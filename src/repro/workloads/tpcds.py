"""A scaled-down TPC-DS-style analytic workload (star schema).

Preserves the properties the paper's TPC-DS evaluation depends on:

* complex multi-join queries over a fact/dimension star schema, so
  there are many index–query correlations;
* per-query reporting (each query carries a ``q<i>`` tag) for the
  Figure 6/7 execution-time-reduction plots;
* a Q32-style query pair where two indexes (a selective dimension
  filter and a fact foreign-key index) are far more valuable together
  than either alone — the paper's motivating case for MCTS over
  greedy selection.
"""

from __future__ import annotations

import random
from typing import List

from repro.ports.backend import TuningBackend
from repro.engine.index import IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import TableSchema, table
from repro.workloads.base import Query, WorkloadGenerator

CATEGORIES = [
    "Books", "Home", "Electronics", "Jewelry", "Men", "Music", "Shoes",
    "Sports", "Toys", "Women",
]
STATES = ["CA", "NY", "TX", "WA", "IL", "GA", "OH", "MI", "PA", "FL"]


class TpcdsWorkload(WorkloadGenerator):
    """Star-schema OLAP scenario with a ``scale`` row multiplier."""

    name = "tpcds"

    def __init__(self, scale: int = 1, seed: int = 23):
        self.scale = scale
        self.seed = seed
        self.dates = 730  # two years of days
        self.items = 1500 * scale
        self.customers = 2500 * scale
        self.addresses = 1200 * scale
        self.stores = 12
        self.promos = 40
        self.store_sales = 30000 * scale
        self.catalog_sales = 15000 * scale
        self.web_sales = 15000 * scale
        self.manufacturers = 300

    def schemas(self) -> List[TableSchema]:
        return [
            table(
                "date_dim",
                [("d_date_sk", T.INT), ("d_year", T.INT), ("d_moy", T.INT),
                 ("d_dom", T.INT), ("d_qoy", T.INT)],
                primary_key=["d_date_sk"],
            ),
            table(
                "item",
                [("i_item_sk", T.INT), ("i_category", T.TEXT),
                 ("i_brand_id", T.INT), ("i_manufact_id", T.INT),
                 ("i_current_price", T.FLOAT), ("i_class_id", T.INT)],
                primary_key=["i_item_sk"],
            ),
            table(
                "customer",
                [("c_customer_sk", T.INT), ("c_birth_year", T.INT),
                 ("c_preferred", T.BOOL), ("c_address_sk", T.INT)],
                primary_key=["c_customer_sk"],
            ),
            table(
                "customer_address",
                [("ca_address_sk", T.INT), ("ca_state", T.TEXT),
                 ("ca_city_id", T.INT)],
                primary_key=["ca_address_sk"],
            ),
            table(
                "store",
                [("s_store_sk", T.INT), ("s_state", T.TEXT),
                 ("s_floor_space", T.INT)],
                primary_key=["s_store_sk"],
            ),
            table(
                "promotion",
                [("p_promo_sk", T.INT), ("p_channel_email", T.BOOL),
                 ("p_cost", T.FLOAT)],
                primary_key=["p_promo_sk"],
            ),
            table(
                "store_sales",
                [("ss_id", T.INT), ("ss_sold_date_sk", T.INT),
                 ("ss_item_sk", T.INT), ("ss_customer_sk", T.INT),
                 ("ss_store_sk", T.INT), ("ss_promo_sk", T.INT),
                 ("ss_quantity", T.INT), ("ss_sales_price", T.FLOAT),
                 ("ss_net_profit", T.FLOAT)],
                primary_key=["ss_id"],
            ),
            table(
                "catalog_sales",
                [("cs_id", T.INT), ("cs_sold_date_sk", T.INT),
                 ("cs_item_sk", T.INT), ("cs_bill_customer_sk", T.INT),
                 ("cs_quantity", T.INT), ("cs_sales_price", T.FLOAT),
                 ("cs_ext_discount_amt", T.FLOAT)],
                primary_key=["cs_id"],
            ),
            table(
                "web_sales",
                [("ws_id", T.INT), ("ws_sold_date_sk", T.INT),
                 ("ws_item_sk", T.INT), ("ws_bill_customer_sk", T.INT),
                 ("ws_quantity", T.INT), ("ws_sales_price", T.FLOAT),
                 ("ws_net_profit", T.FLOAT)],
                primary_key=["ws_id"],
            ),
        ]

    def load(self, db: TuningBackend) -> None:
        rng = random.Random(self.seed)
        db.load_rows(
            "date_dim",
            [
                (sk, 2000 + sk // 365, 1 + (sk % 365) // 31,
                 1 + sk % 28, 1 + ((sk % 365) // 92))
                for sk in range(1, self.dates + 1)
            ],
        )
        db.load_rows(
            "item",
            [
                (sk,
                 CATEGORIES[rng.randrange(len(CATEGORIES))],
                 rng.randrange(1, 120),
                 rng.randrange(1, self.manufacturers + 1),
                 round(1 + rng.random() * 199, 2),
                 rng.randrange(1, 16))
                for sk in range(1, self.items + 1)
            ],
        )
        db.load_rows(
            "customer_address",
            [
                (sk, STATES[rng.randrange(len(STATES))],
                 rng.randrange(1, 200))
                for sk in range(1, self.addresses + 1)
            ],
        )
        db.load_rows(
            "customer",
            [
                (sk, rng.randrange(1930, 2001), rng.random() < 0.3,
                 rng.randrange(1, self.addresses + 1))
                for sk in range(1, self.customers + 1)
            ],
        )
        db.load_rows(
            "store",
            [
                (sk, STATES[rng.randrange(len(STATES))],
                 rng.randrange(5000, 9000))
                for sk in range(1, self.stores + 1)
            ],
        )
        db.load_rows(
            "promotion",
            [
                (sk, rng.random() < 0.5, round(rng.random() * 1000, 2))
                for sk in range(1, self.promos + 1)
            ],
        )
        db.load_rows(
            "store_sales",
            [
                (i,
                 rng.randrange(1, self.dates + 1),
                 rng.randrange(1, self.items + 1),
                 rng.randrange(1, self.customers + 1),
                 rng.randrange(1, self.stores + 1),
                 rng.randrange(1, self.promos + 1),
                 rng.randrange(1, 101),
                 round(rng.random() * 200, 2),
                 round(rng.random() * 100 - 30, 2))
                for i in range(1, self.store_sales + 1)
            ],
        )
        db.load_rows(
            "catalog_sales",
            [
                (i,
                 rng.randrange(1, self.dates + 1),
                 rng.randrange(1, self.items + 1),
                 rng.randrange(1, self.customers + 1),
                 rng.randrange(1, 101),
                 round(rng.random() * 200, 2),
                 round(rng.random() * 50, 2))
                for i in range(1, self.catalog_sales + 1)
            ],
        )
        db.load_rows(
            "web_sales",
            [
                (i,
                 rng.randrange(1, self.dates + 1),
                 rng.randrange(1, self.items + 1),
                 rng.randrange(1, self.customers + 1),
                 rng.randrange(1, 101),
                 round(rng.random() * 200, 2),
                 round(rng.random() * 100 - 30, 2))
                for i in range(1, self.web_sales + 1)
            ],
        )

    def default_indexes(self) -> List[IndexDef]:
        return []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def queries(self, count: int = 0, seed: int = 0) -> List[Query]:
        """The full tagged query set (``count`` <= 0 returns all).

        Queries are deterministic given the generator seed so that
        per-query comparisons (Fig 6/7) are stable across advisor runs.
        """
        rng = random.Random(self.seed * 7919 + seed)
        queries: List[Query] = []

        def add(sql: str) -> None:
            queries.append(Query(sql=sql, kind="read", tag=f"q{len(queries) + 1}"))

        # Shape A: very selective fact filter on quantity (index-only
        # count candidates on ss_quantity / cs_quantity).
        for threshold in (3, 5, 7, 9):
            add(
                "SELECT count(*) FROM store_sales "
                f"WHERE ss_quantity < {threshold}"
            )
        for threshold in (4, 6, 8):
            add(
                "SELECT count(*) FROM catalog_sales "
                f"WHERE cs_quantity < {threshold}"
            )

        # Shape B: top-price fact rows (range candidates on price).
        for price in (198.0, 198.5, 199.0, 199.5):
            add(
                "SELECT ss_item_sk, ss_sales_price FROM store_sales "
                f"WHERE ss_sales_price > {price}"
            )
        for price in (198.0, 199.0):
            add(
                "SELECT cs_item_sk, cs_sales_price FROM catalog_sales "
                f"WHERE cs_sales_price > {price}"
            )

        # Shape C: selective manufacturer drill into the fact table —
        # the Q32-style pair: needs BOTH item(i_manufact_id) and
        # catalog_sales(cs_item_sk) to beat a pair of seq scans.
        for manufact in rng.sample(range(1, self.manufacturers + 1), 6):
            add(
                "SELECT sum(cs_ext_discount_amt) FROM catalog_sales, item "
                f"WHERE i_manufact_id = {manufact} "
                "AND cs_item_sk = i_item_sk"
            )
        for manufact in rng.sample(range(1, self.manufacturers + 1), 4):
            add(
                "SELECT count(*) FROM store_sales, item "
                f"WHERE i_manufact_id = {manufact} "
                "AND ss_item_sk = i_item_sk AND ss_quantity < 50"
            )

        # Shape D: brand drill (selective i_brand_id).
        for brand in rng.sample(range(1, 120), 5):
            add(
                "SELECT sum(ss_net_profit) FROM store_sales, item "
                f"WHERE i_brand_id = {brand} AND ss_item_sk = i_item_sk"
            )

        # Shape E: narrow date window joined to the fact table
        # (candidates: date_dim(d_year,d_moy,d_dom) and fact fk index).
        for (year, moy) in ((2000, 3), (2000, 7), (2001, 2), (2001, 11)):
            add(
                "SELECT sum(ss_sales_price) FROM store_sales, date_dim "
                f"WHERE d_year = {year} AND d_moy = {moy} AND d_dom < 4 "
                "AND ss_sold_date_sk = d_date_sk"
            )
        for (year, moy) in ((2000, 5), (2001, 6)):
            add(
                "SELECT count(*) FROM catalog_sales, date_dim "
                f"WHERE d_year = {year} AND d_moy = {moy} AND d_dom < 3 "
                "AND cs_sold_date_sk = d_date_sk"
            )

        # Shape F: store + date composite on the fact table (composite
        # candidate (ss_store_sk, ss_sold_date_sk)).
        for store in rng.sample(range(1, self.stores + 1), 4):
            lo = rng.randrange(1, self.dates - 10)
            add(
                "SELECT sum(ss_net_profit), count(*) FROM store_sales "
                f"WHERE ss_store_sk = {store} "
                f"AND ss_sold_date_sk BETWEEN {lo} AND {lo + 6}"
            )

        # Shape G: customer-state rollup through two dimensions.
        for state in rng.sample(STATES, 4):
            add(
                "SELECT count(*) FROM customer, customer_address "
                f"WHERE ca_state = '{state}' "
                "AND c_address_sk = ca_address_sk "
                "AND c_birth_year < 1945"
            )

        # Shape H: derived-table form of the manufacturer drill (the
        # paper's 'subquery enhanced only when both indexes exist').
        for manufact in rng.sample(range(1, self.manufacturers + 1), 4):
            add(
                "SELECT count(*) FROM catalog_sales, "
                "(SELECT i_item_sk FROM item "
                f"WHERE i_manufact_id = {manufact}) AS sel_items "
                "WHERE cs_item_sk = sel_items.i_item_sk "
                "AND cs_quantity < 60"
            )

        # Shape I: promotion effectiveness (small dims; low benefit —
        # these are the queries an advisor should NOT index for).
        for promo in rng.sample(range(1, self.promos + 1), 3):
            add(
                "SELECT count(*), sum(ss_sales_price) FROM store_sales "
                f"WHERE ss_promo_sk = {promo} AND ss_quantity < 10"
            )

        # Shape J: grouped category report over a narrow date window.
        for (year, qoy) in ((2000, 1), (2001, 3)):
            add(
                "SELECT i_category, count(*) AS cnt "
                "FROM store_sales, item, date_dim "
                "WHERE ss_item_sk = i_item_sk "
                "AND ss_sold_date_sk = d_date_sk "
                f"AND d_year = {year} AND d_qoy = {qoy} AND d_dom = 1 "
                "GROUP BY i_category ORDER BY cnt DESC"
            )

        # Shape K: customer purchase lookups (fact fk on customer).
        for _ in range(4):
            customer = rng.randrange(1, self.customers + 1)
            add(
                "SELECT count(*), sum(ss_sales_price) FROM store_sales "
                f"WHERE ss_customer_sk = {customer}"
            )
        for _ in range(3):
            customer = rng.randrange(1, self.customers + 1)
            add(
                "SELECT count(*) FROM catalog_sales "
                f"WHERE cs_bill_customer_sk = {customer}"
            )

        # Shape L: high-price selective items per class (dimension-only).
        for class_id in rng.sample(range(1, 16), 3):
            add(
                "SELECT i_item_sk, i_current_price FROM item "
                f"WHERE i_class_id = {class_id} "
                "AND i_current_price > 195 ORDER BY i_current_price DESC"
            )

        # Shape M: brand activity in a narrow month (3-way join).
        for brand in rng.sample(range(1, 120), 5):
            year = rng.choice((2000, 2001))
            moy = rng.randrange(1, 12)
            add(
                "SELECT count(*) FROM store_sales, item, date_dim "
                f"WHERE i_brand_id = {brand} AND ss_item_sk = i_item_sk "
                "AND ss_sold_date_sk = d_date_sk "
                f"AND d_year = {year} AND d_moy = {moy}"
            )

        # Shape N: birth-cohort purchasing (customer dim + fact fk).
        for birth in (1935, 1938, 1941, 1944):
            add(
                "SELECT count(*), sum(ss_sales_price) "
                "FROM store_sales, customer "
                "WHERE ss_customer_sk = c_customer_sk "
                f"AND c_birth_year = {birth}"
            )

        # Shape O: preferred customers in one state (3-way dim chain).
        for state in rng.sample(STATES, 3):
            add(
                "SELECT count(*) FROM customer, customer_address "
                f"WHERE ca_state = '{state}' "
                "AND c_address_sk = ca_address_sk "
                "AND c_preferred = TRUE AND c_birth_year < 1950"
            )

        # Shape P: big-store profitability (small dim filter).
        for floor in (8500, 8800):
            add(
                "SELECT count(*), sum(ss_net_profit) "
                "FROM store_sales, store "
                "WHERE ss_store_sk = s_store_sk "
                f"AND s_floor_space > {floor}"
            )

        # Shape Q: cross-channel item comparison — the same selective
        # item subset drives lookups into BOTH fact tables, so the
        # (item filter, ss fk, cs fk) triple is only fully exploited
        # when all three indexes exist (a stronger Q32-style synergy).
        for manufact in rng.sample(range(1, self.manufacturers + 1), 5):
            add(
                "SELECT count(*) FROM store_sales, item "
                f"WHERE i_manufact_id = {manufact} "
                "AND ss_item_sk = i_item_sk"
            )
            add(
                "SELECT sum(cs_sales_price) FROM catalog_sales, item "
                f"WHERE i_manufact_id = {manufact} "
                "AND cs_item_sk = i_item_sk AND cs_quantity < 80"
            )

        # Shape R: deep-discount catalog lines (selective range).
        for amount in (49.0, 49.5, 49.8):
            add(
                "SELECT cs_item_sk, cs_ext_discount_amt FROM catalog_sales "
                f"WHERE cs_ext_discount_amt > {amount}"
            )

        # Shape S: quarterly category mix (grouped 3-way join).
        for (year, qoy) in ((2000, 2), (2001, 4)):
            add(
                "SELECT i_category, sum(ss_net_profit) AS profit "
                "FROM store_sales, item, date_dim "
                "WHERE ss_item_sk = i_item_sk "
                "AND ss_sold_date_sk = d_date_sk "
                f"AND d_year = {year} AND d_qoy = {qoy} AND d_dom = 2 "
                "GROUP BY i_category ORDER BY profit DESC LIMIT 5"
            )

        # Shape T: low-quantity line items per narrow date window.
        for _ in range(4):
            day = rng.randrange(1, self.dates - 3)
            add(
                "SELECT count(*) FROM store_sales "
                f"WHERE ss_sold_date_sk BETWEEN {day} AND {day + 2} "
                "AND ss_quantity < 10"
            )

        # Shapes U-W: the web channel. A third fact table means no
        # small set of fact indexes can cover every channel — the
        # heterogeneity that separates budget-aware selection from
        # top-k truncation.
        for manufact in rng.sample(range(1, self.manufacturers + 1), 5):
            add(
                "SELECT sum(ws_sales_price) FROM web_sales, item "
                f"WHERE i_manufact_id = {manufact} "
                "AND ws_item_sk = i_item_sk"
            )
        for threshold in (4, 6, 8):
            add(
                "SELECT count(*) FROM web_sales "
                f"WHERE ws_quantity < {threshold}"
            )
        for _ in range(4):
            customer = rng.randrange(1, self.customers + 1)
            add(
                "SELECT count(*), sum(ws_sales_price) FROM web_sales "
                f"WHERE ws_bill_customer_sk = {customer}"
            )
        for (year, moy) in ((2000, 9), (2001, 4)):
            add(
                "SELECT count(*) FROM web_sales, date_dim "
                f"WHERE d_year = {year} AND d_moy = {moy} AND d_dom < 3 "
                "AND ws_sold_date_sk = d_date_sk"
            )
        for brand in rng.sample(range(1, 120), 3):
            add(
                "SELECT sum(ws_net_profit) FROM web_sales, item "
                f"WHERE i_brand_id = {brand} AND ws_item_sk = i_item_sk"
            )

        if count and count > 0:
            return queries[:count]
        return queries
