"""A scaled-down TPC-C generator (OLTP, 9 tables, 5 transaction types).

The paper evaluates on TPC-C 1x/10x/100x. We preserve the schema, the
transaction mix, and the access patterns while scaling row counts so
the pure-Python substrate stays laptop-fast; the ``scale`` knob
multiplies all data sizes. Notably, the generator keeps the access
patterns that produce the paper's Table I indexes:

* order-status looks up orders by customer → ``(o_c_id, o_w_id,
  o_d_id)`` beats the (o_w_id, o_d_id, o_id) primary key;
* stock-level counts low-stock items → an index on ``s_quantity``
  enables an index-only scan, but every new-order transaction updates
  ``s_quantity``, so its net benefit depends on the write mix —
  exactly the read/write trade-off the estimator must learn;
* payment looks customers up by last name → ``(c_w_id, c_d_id,
  c_last)``.
"""

from __future__ import annotations

import random
from typing import List

from repro.ports.backend import TuningBackend
from repro.engine.index import IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import TableSchema, table
from repro.workloads.base import Query, WorkloadGenerator, weighted_choice

LAST_NAMES = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY",
    "ATION", "EING", "BARBAR", "OUGHTPRES", "ABLEESE", "PRIANTI",
    "PRESCALLY", "ESEATION",
]

# Transaction mix (weights roughly follow the TPC-C specification).
TXN_WEIGHTS = {
    "new_order": 45.0,
    "payment": 43.0,
    "order_status": 4.0,
    "delivery": 4.0,
    "stock_level": 4.0,
}


class TpccWorkload(WorkloadGenerator):
    """TPC-C scenario with a row-count ``scale`` multiplier."""

    name = "tpcc"

    def __init__(self, scale: int = 1, seed: int = 11):
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.scale = scale
        self.seed = seed
        self.districts = 10
        self.customers_per_district = 30 * scale
        self.items = 500 * scale
        self.orders_per_district = 30 * scale
        self.lines_per_order = 5
        # Counters used to mint fresh ids for generated inserts.
        self._next_o_id = [
            self.orders_per_district + 1 for _ in range(self.districts)
        ]
        self._next_h_id = self.districts * self.customers_per_district + 1

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------

    def schemas(self) -> List[TableSchema]:
        return [
            table(
                "warehouse",
                [("w_id", T.INT), ("w_name", T.TEXT), ("w_tax", T.FLOAT),
                 ("w_ytd", T.FLOAT)],
                primary_key=["w_id"],
            ),
            table(
                "district",
                [("d_w_id", T.INT), ("d_id", T.INT), ("d_name", T.TEXT),
                 ("d_tax", T.FLOAT), ("d_ytd", T.FLOAT),
                 ("d_next_o_id", T.INT)],
                primary_key=["d_w_id", "d_id"],
            ),
            table(
                "customer",
                [("c_w_id", T.INT), ("c_d_id", T.INT), ("c_id", T.INT),
                 ("c_first", T.TEXT), ("c_last", T.TEXT),
                 ("c_credit", T.TEXT), ("c_discount", T.FLOAT),
                 ("c_balance", T.FLOAT), ("c_payment_cnt", T.INT)],
                primary_key=["c_w_id", "c_d_id", "c_id"],
            ),
            table(
                "history",
                [("h_id", T.INT), ("h_c_w_id", T.INT), ("h_c_d_id", T.INT),
                 ("h_c_id", T.INT), ("h_amount", T.FLOAT),
                 ("h_data", T.TEXT)],
                primary_key=["h_id"],
            ),
            table(
                "orders",
                [("o_w_id", T.INT), ("o_d_id", T.INT), ("o_id", T.INT),
                 ("o_c_id", T.INT), ("o_carrier_id", T.INT),
                 ("o_ol_cnt", T.INT), ("o_entry_d", T.INT)],
                primary_key=["o_w_id", "o_d_id", "o_id"],
            ),
            table(
                "new_order",
                [("no_w_id", T.INT), ("no_d_id", T.INT), ("no_o_id", T.INT)],
                primary_key=["no_w_id", "no_d_id", "no_o_id"],
            ),
            table(
                "order_line",
                [("ol_w_id", T.INT), ("ol_d_id", T.INT), ("ol_o_id", T.INT),
                 ("ol_number", T.INT), ("ol_i_id", T.INT),
                 ("ol_quantity", T.INT), ("ol_amount", T.FLOAT)],
                primary_key=["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
            ),
            table(
                "item",
                [("i_id", T.INT), ("i_name", T.TEXT), ("i_price", T.FLOAT),
                 ("i_data", T.TEXT)],
                primary_key=["i_id"],
            ),
            table(
                "stock",
                [("s_w_id", T.INT), ("s_i_id", T.INT), ("s_quantity", T.INT),
                 ("s_ytd", T.INT), ("s_order_cnt", T.INT)],
                primary_key=["s_w_id", "s_i_id"],
            ),
        ]

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------

    def load(self, db: TuningBackend) -> None:
        rng = random.Random(self.seed)
        db.load_rows("warehouse", [(1, "W_ONE", 0.08, 300000.0)])
        db.load_rows(
            "district",
            [
                (1, d, f"D{d}", round(rng.random() * 0.2, 3), 30000.0,
                 self.orders_per_district + 1)
                for d in range(1, self.districts + 1)
            ],
        )
        customers = []
        for d in range(1, self.districts + 1):
            for c in range(1, self.customers_per_district + 1):
                customers.append(
                    (
                        1, d, c,
                        f"first_{c}",
                        LAST_NAMES[rng.randrange(len(LAST_NAMES))],
                        rng.choice(("GC", "BC")),
                        round(rng.random() * 0.5, 4),
                        round(rng.random() * 1000 - 500, 2),
                        rng.randrange(5),
                    )
                )
        db.load_rows("customer", customers)

        history = [
            (h, 1, rng.randrange(1, self.districts + 1),
             rng.randrange(1, self.customers_per_district + 1),
             10.0, "initial")
            for h in range(1, len(customers) + 1)
        ]
        db.load_rows("history", history)

        db.load_rows(
            "item",
            [
                (i, f"item_{i}", round(1 + rng.random() * 100, 2),
                 f"data_{i % 17}")
                for i in range(1, self.items + 1)
            ],
        )
        db.load_rows(
            "stock",
            [
                (1, i, rng.randrange(10, 101), 0, 0)
                for i in range(1, self.items + 1)
            ],
        )

        orders, new_orders, order_lines = [], [], []
        for d in range(1, self.districts + 1):
            for o in range(1, self.orders_per_district + 1):
                c = rng.randrange(1, self.customers_per_district + 1)
                carrier = rng.randrange(1, 11) if o % 3 else 0
                orders.append((1, d, o, c, carrier, self.lines_per_order, o))
                if o > self.orders_per_district - max(
                    self.orders_per_district // 3, 1
                ):
                    new_orders.append((1, d, o))
                for line in range(1, self.lines_per_order + 1):
                    order_lines.append(
                        (
                            1, d, o, line,
                            rng.randrange(1, self.items + 1),
                            rng.randrange(1, 11),
                            round(rng.random() * 100, 2),
                        )
                    )
        db.load_rows("orders", orders)
        db.load_rows("new_order", new_orders)
        db.load_rows("order_line", order_lines)

    def default_indexes(self) -> List[IndexDef]:
        # The paper's Default config: primary-key indexes only (these
        # are created automatically by create_table).
        return []

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def queries(self, count: int, seed: int = 0) -> List[Query]:
        rng = random.Random(self.seed * 1000003 + seed)
        kinds = list(TXN_WEIGHTS)
        weights = [TXN_WEIGHTS[k] for k in kinds]
        queries: List[Query] = []
        while len(queries) < count:
            kind = kinds[weighted_choice(rng, weights)]
            generator = getattr(self, f"_txn_{kind}")
            queries.extend(generator(rng))
        return queries[:count]

    def _rand_district(self, rng: random.Random) -> int:
        return rng.randrange(1, self.districts + 1)

    def _rand_customer(self, rng: random.Random) -> int:
        return rng.randrange(1, self.customers_per_district + 1)

    def _rand_item(self, rng: random.Random) -> int:
        return rng.randrange(1, self.items + 1)

    def _txn_new_order(self, rng: random.Random) -> List[Query]:
        d = self._rand_district(rng)
        c = self._rand_customer(rng)
        o_id = self._next_o_id[d - 1]
        self._next_o_id[d - 1] += 1
        lines = rng.randrange(2, 5)
        queries = [
            Query(
                sql=(
                    "SELECT c_discount, c_last, c_credit FROM customer "
                    f"WHERE c_w_id = 1 AND c_d_id = {d} AND c_id = {c}"
                ),
                kind="read", tag="new_order",
            ),
            Query(sql="SELECT w_tax FROM warehouse WHERE w_id = 1",
                  kind="read", tag="new_order"),
            Query(
                sql=(
                    "SELECT d_tax, d_next_o_id FROM district "
                    f"WHERE d_w_id = 1 AND d_id = {d}"
                ),
                kind="read", tag="new_order",
            ),
            Query(
                sql=(
                    "UPDATE district SET d_next_o_id = d_next_o_id + 1 "
                    f"WHERE d_w_id = 1 AND d_id = {d}"
                ),
                kind="write", tag="new_order",
            ),
            Query(
                sql=(
                    "INSERT INTO orders (o_w_id, o_d_id, o_id, o_c_id, "
                    "o_carrier_id, o_ol_cnt, o_entry_d) VALUES "
                    f"(1, {d}, {o_id}, {c}, 0, {lines}, {o_id})"
                ),
                kind="write", tag="new_order",
            ),
            Query(
                sql=(
                    "INSERT INTO new_order (no_w_id, no_d_id, no_o_id) "
                    f"VALUES (1, {d}, {o_id})"
                ),
                kind="write", tag="new_order",
            ),
        ]
        for line in range(1, lines + 1):
            i = self._rand_item(rng)
            qty = rng.randrange(1, 11)
            queries.extend(
                [
                    Query(
                        sql=(
                            "SELECT i_price, i_name FROM item "
                            f"WHERE i_id = {i}"
                        ),
                        kind="read", tag="new_order",
                    ),
                    Query(
                        sql=(
                            "SELECT s_quantity FROM stock "
                            f"WHERE s_w_id = 1 AND s_i_id = {i}"
                        ),
                        kind="read", tag="new_order",
                    ),
                    Query(
                        sql=(
                            "UPDATE stock SET s_quantity = "
                            f"{rng.randrange(10, 101)}, "
                            "s_order_cnt = s_order_cnt + 1 "
                            f"WHERE s_w_id = 1 AND s_i_id = {i}"
                        ),
                        kind="write", tag="new_order",
                    ),
                    Query(
                        sql=(
                            "INSERT INTO order_line (ol_w_id, ol_d_id, "
                            "ol_o_id, ol_number, ol_i_id, ol_quantity, "
                            f"ol_amount) VALUES (1, {d}, {o_id}, {line}, "
                            f"{i}, {qty}, {round(qty * rng.random() * 100, 2)})"
                        ),
                        kind="write", tag="new_order",
                    ),
                ]
            )
        return queries

    def _txn_payment(self, rng: random.Random) -> List[Query]:
        d = self._rand_district(rng)
        amount = round(1 + rng.random() * 5000, 2)
        h_id = self._next_h_id
        self._next_h_id += 1
        queries = [
            Query(
                sql=(
                    f"UPDATE warehouse SET w_ytd = w_ytd + {amount} "
                    "WHERE w_id = 1"
                ),
                kind="write", tag="payment",
            ),
            Query(
                sql=(
                    f"UPDATE district SET d_ytd = d_ytd + {amount} "
                    f"WHERE d_w_id = 1 AND d_id = {d}"
                ),
                kind="write", tag="payment",
            ),
        ]
        if rng.random() < 0.6:
            last = LAST_NAMES[rng.randrange(len(LAST_NAMES))]
            queries.append(
                Query(
                    sql=(
                        "SELECT c_id, c_first, c_balance FROM customer "
                        f"WHERE c_w_id = 1 AND c_d_id = {d} "
                        f"AND c_last = '{last}' ORDER BY c_first"
                    ),
                    kind="read", tag="payment",
                )
            )
        c = self._rand_customer(rng)
        queries.extend(
            [
                Query(
                    sql=(
                        "UPDATE customer SET "
                        f"c_balance = c_balance - {amount}, "
                        "c_payment_cnt = c_payment_cnt + 1 "
                        f"WHERE c_w_id = 1 AND c_d_id = {d} AND c_id = {c}"
                    ),
                    kind="write", tag="payment",
                ),
                Query(
                    sql=(
                        "INSERT INTO history (h_id, h_c_w_id, h_c_d_id, "
                        f"h_c_id, h_amount, h_data) VALUES ({h_id}, 1, "
                        f"{d}, {c}, {amount}, 'payment')"
                    ),
                    kind="write", tag="payment",
                ),
            ]
        )
        return queries

    def _txn_order_status(self, rng: random.Random) -> List[Query]:
        d = self._rand_district(rng)
        c = self._rand_customer(rng)
        return [
            Query(
                sql=(
                    "SELECT c_first, c_last, c_balance FROM customer "
                    f"WHERE c_w_id = 1 AND c_d_id = {d} AND c_id = {c}"
                ),
                kind="read", tag="order_status",
            ),
            Query(
                sql=(
                    "SELECT o_id, o_entry_d, o_carrier_id FROM orders "
                    f"WHERE o_c_id = {c} AND o_w_id = 1 AND o_d_id = {d} "
                    "ORDER BY o_id DESC LIMIT 1"
                ),
                kind="read", tag="order_status",
            ),
            Query(
                sql=(
                    "SELECT ol_i_id, ol_quantity, ol_amount FROM order_line "
                    f"WHERE ol_w_id = 1 AND ol_d_id = {d} "
                    f"AND ol_o_id = {rng.randrange(1, self.orders_per_district + 1)}"
                ),
                kind="read", tag="order_status",
            ),
            # Cross-district order count for a customer id: benefits
            # from the (o_c_id, o_d_id) combination index of Table I.
            Query(
                sql=(
                    "SELECT count(*) FROM orders "
                    f"WHERE o_c_id = {c} AND o_d_id = {d}"
                ),
                kind="read", tag="order_status",
            ),
        ]

    def _txn_delivery(self, rng: random.Random) -> List[Query]:
        d = self._rand_district(rng)
        o = rng.randrange(
            max(self.orders_per_district - self.orders_per_district // 3, 1),
            self.orders_per_district + 1,
        )
        c = self._rand_customer(rng)
        return [
            Query(
                sql=(
                    "SELECT min(no_o_id) FROM new_order "
                    f"WHERE no_w_id = 1 AND no_d_id = {d}"
                ),
                kind="read", tag="delivery",
            ),
            Query(
                sql=(
                    "DELETE FROM new_order WHERE no_w_id = 1 "
                    f"AND no_d_id = {d} AND no_o_id = {o}"
                ),
                kind="write", tag="delivery",
            ),
            Query(
                sql=(
                    f"UPDATE orders SET o_carrier_id = {rng.randrange(1, 11)} "
                    f"WHERE o_w_id = 1 AND o_d_id = {d} AND o_id = {o}"
                ),
                kind="write", tag="delivery",
            ),
            Query(
                sql=(
                    "SELECT sum(ol_amount) FROM order_line "
                    f"WHERE ol_w_id = 1 AND ol_d_id = {d} AND ol_o_id = {o}"
                ),
                kind="read", tag="delivery",
            ),
            Query(
                sql=(
                    "UPDATE customer SET c_balance = c_balance + 10.0 "
                    f"WHERE c_w_id = 1 AND c_d_id = {d} AND c_id = {c}"
                ),
                kind="write", tag="delivery",
            ),
        ]

    def _txn_stock_level(self, rng: random.Random) -> List[Query]:
        d = self._rand_district(rng)
        threshold = rng.randrange(10, 21)
        recent = max(self._next_o_id[d - 1] - 20, 1)
        return [
            Query(
                sql=(
                    "SELECT d_next_o_id FROM district "
                    f"WHERE d_w_id = 1 AND d_id = {d}"
                ),
                kind="read", tag="stock_level",
            ),
            Query(
                sql=(
                    "SELECT count(DISTINCT ol_i_id) FROM order_line "
                    f"WHERE ol_w_id = 1 AND ol_d_id = {d} "
                    f"AND ol_o_id >= {recent}"
                ),
                kind="read", tag="stock_level",
            ),
            # Low-stock monitoring: an index-only scan on s_quantity
            # serves this, but new-order keeps rewriting s_quantity —
            # the paper's read-benefit vs maintenance-cost trade-off.
            Query(
                sql=(
                    "SELECT count(*) FROM stock "
                    f"WHERE s_quantity < {threshold}"
                ),
                kind="read", tag="stock_level",
            ),
        ]
