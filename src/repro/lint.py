"""``python -m repro.lint`` — run the invariant linter.

Thin wrapper so the CLI has a short, memorable module path; all logic
lives in :mod:`repro.analysis.cli`.
"""

from __future__ import annotations

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
