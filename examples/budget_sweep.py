"""Storage-budget sweep (the paper's Figure 10 mechanic) plus a peek at
the learned cost estimator.

Shows two things on a TPC-C database:

1. how AutoIndex's selection changes as the storage budget shrinks —
   the policy tree backs off to smaller index combinations instead of
   just truncating a ranked list;
2. training the Section V deep regression on observed executions and
   comparing its fit against the static what-if model.

Run with::

    python examples/budget_sweep.py
"""

import numpy as np

from repro import AutoIndexAdvisor, MemoryBackend, WhatIfCostModel
from repro.workloads import TpccWorkload


def sweep() -> None:
    print("== storage budget sweep ==")
    # Yardstick: the footprint of everything AutoIndex might build.
    probe_gen = TpccWorkload(scale=4, seed=11)
    probe_db = MemoryBackend()
    probe_gen.build(probe_db)
    probe = AutoIndexAdvisor(probe_db)
    for query in probe_gen.queries(600, seed=0):
        probe_db.execute(query.sql)
        probe.observe(query.sql)
    candidates = probe.generator.generate(probe.store.templates())
    footprint = sum(
        probe_db.index_size_bytes(c.definition) for c in candidates
    )
    print(f"candidate footprint: {footprint / 1024:.0f} KB")

    for label, budget in [
        ("no limit", None),
        ("60%", int(footprint * 0.6)),
        ("30%", int(footprint * 0.3)),
        ("10%", int(footprint * 0.1)),
    ]:
        generator = TpccWorkload(scale=4, seed=11)
        db = MemoryBackend()
        generator.build(db)
        advisor = AutoIndexAdvisor(
            db, storage_budget=budget, mcts_iterations=80
        )
        for query in generator.queries(800, seed=0):
            db.execute(query.sql)
            advisor.observe(query.sql)
        report = advisor.tune()
        test_cost = sum(
            db.execute(q.sql).cost for q in generator.queries(500, seed=900)
        )
        used = sum(db.index_size_bytes(d) for d in report.created)
        print(
            f"budget {label:9s}: {len(report.created)} indexes "
            f"({used / 1024:.0f} KB), test cost {test_cost:,.0f}"
        )


def learned_estimator() -> None:
    print("\n== learned cost estimator ==")
    generator = TpccWorkload(scale=3, seed=11)
    db = MemoryBackend()
    generator.build(db)
    advisor = AutoIndexAdvisor(db)
    for query in generator.queries(800, seed=0):
        result = db.execute(query.sql)
        advisor.observe(query.sql)
        advisor.record_execution(query.sql, result.cost)

    X, y = advisor.estimator.training_matrix()
    naive = WhatIfCostModel().predict(X)
    naive_mae = float(np.mean(np.abs(naive - y)))
    metrics = advisor.train_estimator()
    learned = advisor.estimator.model.predict(X)
    learned_mae = float(np.mean(np.abs(learned - y)))
    print(f"samples: {metrics.samples}")
    print(f"static what-if model  MAE: {naive_mae:.3f}")
    print(f"deep regression       MAE: {learned_mae:.3f} "
          f"(q-error {metrics.mean_q_error:.2f})")


if __name__ == "__main__":
    sweep()
    learned_estimator()
