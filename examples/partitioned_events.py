"""Index scope selection on a partitioned table (paper, Section III).

An events table is hash-partitioned by tenant. The same logical index
can be built GLOBAL (one big tree, wider entries — fast but larger) or
LOCAL (one tree per partition — smaller, but lookups that can't prune
to one tenant probe every partition). AutoIndex's candidate generator
offers both scopes and MCTS picks using the same benefit machinery as
everything else.

Run with::

    python examples/partitioned_events.py
"""

import random

from repro import AutoIndexAdvisor, ColumnType, MemoryBackend, IndexDef, table
from repro.engine.index import IndexScope


def main() -> None:
    db = MemoryBackend()
    db.create_table(
        table(
            "events",
            [
                ("event_id", ColumnType.INT),
                ("tenant_id", ColumnType.INT),
                ("kind", ColumnType.INT),
                ("value", ColumnType.FLOAT),
            ],
            primary_key=["event_id"],
            partition_count=8,
            partition_key="tenant_id",
        )
    )
    rng = random.Random(3)
    db.load_rows(
        "events",
        [
            (i, rng.randrange(50), rng.randrange(400),
             round(rng.random() * 100, 2))
            for i in range(30000)
        ],
    )
    db.analyze()

    # Compare the two scopes head to head on the same logical indexes.
    print("== global vs local on events(tenant_id, kind) + events(kind) ==")
    for scope in (IndexScope.GLOBAL, IndexScope.LOCAL):
        composite = IndexDef(
            table="events", columns=("tenant_id", "kind"), scope=scope
        )
        kind_only = IndexDef(table="events", columns=("kind",), scope=scope)
        total_bytes = (
            db.create_index(composite).byte_size
            + db.create_index(kind_only).byte_size
        )
        db.analyze()
        pruning = db.execute(
            "SELECT count(*) FROM events WHERE tenant_id = 7 AND kind = 3"
        ).cost
        non_pruning = db.execute(
            "SELECT count(*) FROM events WHERE kind = 3"
        ).cost
        print(
            f"{scope.value:6s}: {total_bytes // 1024:5d} KB, "
            f"tenant-pruned lookup {pruning:6.2f}, "
            f"cross-tenant lookup {non_pruning:6.2f}"
        )
        db.drop_index(composite)
        db.drop_index(kind_only)

    # Let the advisor choose: a tenant-scoped workload rewards LOCAL.
    print("\n== advisor's choice for a tenant-scoped workload ==")
    advisor = AutoIndexAdvisor(db, mcts_iterations=60)
    for _ in range(150):
        tenant = rng.randrange(50)
        kind = rng.randrange(400)
        sql = (
            "SELECT count(*) FROM events "
            f"WHERE tenant_id = {tenant} AND kind = {kind}"
        )
        db.execute(sql)
        advisor.observe(sql)
    report = advisor.tune()
    for definition in report.created:
        print(
            f"created: {definition} "
            f"({db.index_size_bytes(definition) // 1024} KB)"
        )


if __name__ == "__main__":
    main()
