"""The paper's Figure 2 storyline: incremental index management as an
epidemic-tracking workload shifts through three phases.

* W1 — read-heavy: fever counts and per-community lookups → AutoIndex
  builds indexes on temperature and (community, status);
* W2 — insert-heavy spread: the community index's maintenance cost now
  exceeds its (decayed) read benefit → AutoIndex drops it, keeping the
  temperature index whose count queries still recur;
* W3 — update-heavy containment: temperature refreshes keyed by
  (name, community) → AutoIndex builds the multi-column index.

Run with::

    python examples/dynamic_epidemic.py
"""

from repro import AutoIndexAdvisor, MemoryBackend
from repro.workloads import EpidemicWorkload


def run_phase(db, advisor, name, queries):
    cost = 0.0
    for query in queries:
        cost += db.execute(query.sql).cost
        advisor.observe(query.sql)
    report = advisor.tune()
    print(f"\n=== {name}: cost {cost:,.0f} over {len(queries)} queries ===")
    if report.created:
        print("  + created:", ", ".join(str(d) for d in report.created))
    if report.dropped:
        print("  - dropped:", ", ".join(str(d) for d in report.dropped))
    if not report.changed:
        print("  (no index changes)")
    print(
        "  indexes now:",
        ", ".join(str(d) for d in db.index_defs()),
    )


def main() -> None:
    generator = EpidemicWorkload(people=8000)
    db = MemoryBackend()
    generator.build(db)
    advisor = AutoIndexAdvisor(db, mcts_iterations=60)

    run_phase(db, advisor, "W1 (random reads)", generator.phase_w1(300, seed=1))
    run_phase(db, advisor, "W2 (insert wave)", generator.phase_w2(2600, seed=2))
    run_phase(db, advisor, "W3 (temperature updates)",
              generator.phase_w3(500, seed=3))


if __name__ == "__main__":
    main()
