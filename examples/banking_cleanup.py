"""The paper's Figure 1 scenario: cleaning up an over-indexed system.

A 144-table banking database starts with 263 DBA-crafted indexes on
the withdraw business — most redundant, several actively harmful
(they index columns every withdrawal rewrites). AutoIndex watches the
real query stream and removes the dead weight while keeping (and
adding) what the workload actually uses.

Run with::

    python examples/banking_cleanup.py
"""

from repro import AutoIndexAdvisor, MemoryBackend
from repro.workloads import BankingWorkload


def main() -> None:
    generator = BankingWorkload()
    db = MemoryBackend()
    print("building 144 tables + 263 manual indexes ...")
    generator.build(db)  # default config = the DBA's manual indexes

    manual = len(generator.manual_withdraw_indexes())
    bytes_before = db.total_index_bytes()
    print(
        f"start: {manual} manual indexes, "
        f"{bytes_before / (1024 * 1024):.1f} MB of index storage"
    )

    advisor = AutoIndexAdvisor(db, mcts_iterations=80)
    queries = generator.withdrawal_queries(2500, seed=0)
    cost_before = 0.0
    for query in queries:
        cost_before += db.execute(query.sql).cost
        advisor.observe(query.sql)

    # Diagnosis first — this is what would fire the tuning request in
    # production (the paper's monitored trigger).
    problems = advisor.diagnose()
    print(
        f"\ndiagnosis: {len(problems.rarely_used)} rarely-used, "
        f"{len(problems.negative)} negative-benefit, "
        f"{len(problems.missing_beneficial)} missing-beneficial "
        f"(problem ratio {100 * problems.problem_ratio:.0f}%)"
    )

    report = advisor.tune()
    bytes_after = db.total_index_bytes()
    print(
        f"\ntuning: removed {len(report.dropped)} indexes "
        f"({100 * len(report.dropped) / manual:.0f}% of the manual set), "
        f"created {len(report.created)}"
    )
    print(
        f"storage: {bytes_before / (1024 * 1024):.1f} MB -> "
        f"{bytes_after / (1024 * 1024):.1f} MB "
        f"({100 * (1 - bytes_after / bytes_before):.0f}% saved)"
    )

    cost_after = sum(
        db.execute(q.sql).cost
        for q in generator.withdrawal_queries(2500, seed=9)
    )
    print(
        f"withdraw-service cost: {cost_before:,.0f} -> {cost_after:,.0f} "
        f"({100 * (1 - cost_after / cost_before):.1f}% cheaper; "
        "the paper reports a ~4% throughput gain after removal)"
    )


if __name__ == "__main__":
    main()
