"""Quickstart: create a database, run a workload, let AutoIndex tune it.

Run with::

    python examples/quickstart.py
"""

import random

from repro import AutoIndexAdvisor, ColumnType, MemoryBackend, table


def main() -> None:
    # 1. Build a database on the bundled engine substrate.
    db = MemoryBackend()
    db.create_table(
        table(
            "users",
            [
                ("id", ColumnType.INT),
                ("email", ColumnType.TEXT),
                ("country", ColumnType.INT),
                ("age", ColumnType.INT),
                ("plan", ColumnType.TEXT),
            ],
            primary_key=["id"],
        )
    )
    rng = random.Random(1)
    db.load_rows(
        "users",
        [
            (
                i,
                f"user{i}@example.com",
                rng.randrange(60),
                rng.randrange(18, 90),
                rng.choice(("free", "free", "free", "pro", "team")),
            )
            for i in range(20000)
        ],
    )
    db.analyze()

    # 2. Run a workload and let the advisor watch it.
    advisor = AutoIndexAdvisor(db)
    queries = [
        f"SELECT id, email FROM users WHERE country = {rng.randrange(60)} "
        "AND plan = 'team'"
        for _ in range(120)
    ]
    before = 0.0
    for sql in queries:
        before += db.execute(sql).cost
        advisor.observe(sql)
    print(f"workload cost before tuning: {before:,.1f}")

    # 3. One incremental tuning round: diagnose → candidates → MCTS.
    report = advisor.tune()
    print("created:", [str(d) for d in report.created])
    print("dropped:", [str(d) for d in report.dropped])
    print(
        f"estimated benefit: {report.estimated_benefit:,.1f} of "
        f"{report.baseline_cost:,.1f} "
        f"({100 * report.estimated_benefit / report.baseline_cost:.1f}%)"
    )

    # 4. The same workload after tuning.
    after = sum(db.execute(sql).cost for sql in queries)
    print(f"workload cost after tuning:  {after:,.1f} "
          f"({100 * (1 - after / before):.1f}% faster)")

    # 5. Inspect a plan to see the new index in action.
    print("\nplan for one query:")
    print(db.explain(queries[0]))


if __name__ == "__main__":
    main()
