"""Legacy setup shim (the sandbox lacks the ``wheel`` package, so the
PEP 660 editable path is unavailable; ``--no-use-pep517`` uses this)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of AutoIndex (ICDE 2022): incremental index "
        "management for dynamic workloads"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
