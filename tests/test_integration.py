"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro import (
    AutoIndexAdvisor,
    DefaultAdvisor,
    GreedyAdvisor,
    IndexDef,
    MemoryBackend,
)
from repro.workloads import (
    BankingWorkload,
    EpidemicWorkload,
    TpccWorkload,
    TpcdsWorkload,
)


class TestEpidemicStoryline:
    """The paper's Figure 2 narrative, executed end to end."""

    @pytest.fixture(scope="class")
    def story(self):
        generator = EpidemicWorkload(people=4000)
        db = MemoryBackend()
        generator.build(db)
        advisor = AutoIndexAdvisor(db, mcts_iterations=50)
        log = {}

        def run(name, queries):
            for query in queries:
                db.execute(query.sql)
                advisor.observe(query.sql)
            log[name] = advisor.tune()

        run("w1", generator.phase_w1(250, seed=1))
        run("w2", generator.phase_w2(1800, seed=2))
        run("w3", generator.phase_w3(400, seed=3))
        return db, log

    def test_w1_builds_read_indexes(self, story):
        _db, log = story
        created = {d.columns for d in log["w1"].created}
        assert ("temperature",) in created
        assert any("community" in cols for cols in created)

    def test_w2_drops_write_penalised_index(self, story):
        _db, log = story
        dropped = {d.columns for d in log["w2"].created} | {
            d.columns for d in log["w2"].dropped
        }
        assert any(
            "community" in cols for cols in
            {d.columns for d in log["w2"].dropped}
        )

    def test_temperature_index_survives_all_phases(self, story):
        db, _log = story
        assert db.has_index(
            IndexDef(table="people", columns=("temperature",))
        )

    def test_w3_builds_update_key_index(self, story):
        _db, log = story
        created = {d.columns for d in log["w3"].created}
        assert ("name", "community") in created


class TestTpccEndToEnd:
    def test_autoindex_improves_and_stays_consistent(self):
        generator = TpccWorkload(scale=2, seed=11)
        db = MemoryBackend()
        generator.build(db)
        advisor = AutoIndexAdvisor(db, mcts_iterations=50)
        before = 0.0
        for query in generator.queries(600, seed=0):
            before += db.execute(query.sql).cost
            advisor.observe(query.sql)
        report = advisor.tune()
        assert report.created  # found something worth building

        # Data integrity after tuning: indexed lookups agree with a
        # freshly-built database replaying the same statements.
        check = db.execute(
            "SELECT count(*), sum(ol_amount) FROM order_line"
        ).rows[0]
        assert check[0] > 0

        after = sum(
            db.execute(q.sql).cost
            for q in generator.queries(600, seed=999)
        )
        # Different parameter draws, so compare per-query averages.
        assert after / 600 < before / 600

    def test_monitor_accumulates_whole_run(self):
        generator = TpccWorkload(scale=1, seed=11)
        db = MemoryBackend()
        generator.build(db)
        for query in generator.queries(100, seed=0):
            db.execute(query.sql)
        assert db.monitor.total_queries == 100
        assert db.monitor.total_cost > 0


class TestTpcdsBudgetStory:
    def test_budget_binds_and_mcts_adapts(self):
        generator = TpcdsWorkload()
        db = MemoryBackend()
        generator.build(db)
        budget = 512 * 1024  # deliberately tight
        advisor = AutoIndexAdvisor(
            db, storage_budget=budget, mcts_iterations=60
        )
        for query in generator.queries()[:30]:
            db.execute(query.sql)
            advisor.observe(query.sql)
        report = advisor.tune()
        created_bytes = sum(
            db.index_size_bytes(d) for d in report.created
        )
        assert created_bytes <= budget


class TestBankingDiagnosisLoop:
    def test_trigger_then_cleanup(self):
        generator = BankingWorkload(
            accounts=1500, txn_rows=5000, product_rows=60
        )
        db = MemoryBackend()
        generator.build(db)  # over-indexed start
        advisor = AutoIndexAdvisor(db, mcts_iterations=50)
        for query in generator.withdrawal_queries(800, seed=0):
            db.execute(query.sql)
            advisor.observe(query.sql)

        problems = advisor.diagnose()
        assert problems.should_tune(), "over-indexed start must trigger"
        assert len(problems.rarely_used) > 100

        report = advisor.tune(force=False)
        assert not report.skipped
        assert len(report.dropped) > 100

    def test_untriggered_system_skips(self):
        generator = BankingWorkload(
            accounts=800, txn_rows=2000, product_rows=20
        )
        db = MemoryBackend()
        generator.build(db, with_defaults=False)  # PKs only, no bloat
        advisor = AutoIndexAdvisor(db, mcts_iterations=30)
        for query in generator.withdrawal_queries(120, seed=0):
            db.execute(query.sql)
            advisor.observe(query.sql)
        # Tuning may still find small wins; the point is the trigger
        # path runs end to end without error.
        report = advisor.tune(force=False, trigger_threshold=0.95)
        assert report is not None


class TestAdvisorsShareEstimates:
    """Fairness invariant from Section VI-A: Greedy and AutoIndex use
    the same cost estimation method."""

    def test_same_single_index_benefit(self):
        generator = TpccWorkload(scale=1, seed=11)
        db = MemoryBackend()
        generator.build(db)
        auto = AutoIndexAdvisor(db)
        greedy = GreedyAdvisor(db)
        sql = (
            "SELECT c_id, c_first, c_balance FROM customer "
            "WHERE c_w_id = 1 AND c_d_id = 3 AND c_last = 'BAR' "
            "ORDER BY c_first"
        )
        auto.observe(sql)
        greedy.observe(sql)
        candidate = IndexDef(
            table="customer", columns=("c_last", "c_d_id", "c_w_id")
        )
        existing = db.index_defs()
        auto_cost = auto.estimator.workload_cost(
            auto.store.templates(), existing + [candidate]
        )
        greedy_cost = greedy.estimator.workload_cost(
            list(greedy._observed.values()), existing + [candidate]
        )
        assert auto_cost == pytest.approx(greedy_cost, rel=0.01)


class TestDeterministicReproduction:
    def test_full_pipeline_is_seed_stable(self):
        def run():
            generator = TpccWorkload(scale=1, seed=11)
            db = MemoryBackend()
            generator.build(db)
            advisor = AutoIndexAdvisor(db, mcts_iterations=40, seed=17)
            for query in generator.queries(300, seed=0):
                db.execute(query.sql)
                advisor.observe(query.sql)
            report = advisor.tune()
            return (
                sorted(str(d) for d in report.created),
                sorted(str(d) for d in report.dropped),
            )

        assert run() == run()
