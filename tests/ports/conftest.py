"""Fixtures for the backend-conformance suite.

Every test here is parametrized over all registered adapters, so one
suite pins down the :class:`repro.ports.backend.TuningBackend`
contract for the in-memory engine and the SQLite adapter alike.  CI
can restrict the matrix to one adapter per job with
``REPRO_TEST_BACKEND=memory`` / ``REPRO_TEST_BACKEND=sqlite``.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.engine.schema import ColumnType as T
from repro.engine.schema import table
from repro.ports import available_backends, create_backend


def selected_backends() -> tuple:
    chosen = os.environ.get("REPRO_TEST_BACKEND", "").strip()
    if not chosen:
        return available_backends()
    names = tuple(name.strip() for name in chosen.split(",") if name.strip())
    unknown = set(names) - set(available_backends())
    if unknown:
        raise ValueError(
            f"REPRO_TEST_BACKEND names unknown backends: {sorted(unknown)}"
        )
    return names


@pytest.fixture(params=selected_backends())
def backend_name(request) -> str:
    return request.param


@pytest.fixture
def backend(backend_name):
    return create_backend(backend_name)


def load_people(db, rows: int = 2000) -> None:
    """A small deterministic table shared by the conformance tests."""
    db.create_table(
        table(
            "people",
            [
                ("id", T.INT),
                ("name", T.TEXT),
                ("community", T.INT),
                ("temperature", T.FLOAT),
                ("status", T.TEXT),
            ],
            primary_key=["id"],
        )
    )
    rng = random.Random(7)
    db.load_rows(
        "people",
        [
            (
                i,
                f"person_{i}",
                rng.randrange(20),
                round(36.0 + rng.random() * 5.0, 1),
                rng.choice(("healthy", "suspect", "confirmed")),
            )
            for i in range(rows)
        ],
    )
    db.analyze()


@pytest.fixture
def people_backend(backend):
    load_people(backend)
    return backend
