"""Golden-workload parity: both adapters must tell the tuner the
same story.

The banking scenario (the paper's production workload) is built on
the in-memory engine and on SQLite; statistics, what-if costs, and a
full tuning round must agree.  This is the load-bearing guarantee of
the ports layer: index decisions made against one backend transfer
verbatim to the other.
"""

from __future__ import annotations

import pytest

from repro.core.advisor import AutoIndexAdvisor
from repro.ports import create_backend
from repro.workloads.banking import BankingWorkload

MiB = 1024 * 1024


def small_banking() -> BankingWorkload:
    return BankingWorkload(
        accounts=150, txn_rows=600, product_rows=30, seed=5
    )


@pytest.fixture(scope="module")
def pair():
    """The banking scenario built identically on both adapters."""
    builds = {}
    for name in ("memory", "sqlite"):
        generator = small_banking()
        db = create_backend(name)
        generator.build(db)
        builds[name] = (db, generator)
    return builds


class TestStatsParity:
    def test_row_counts(self, pair):
        memory, _ = pair["memory"]
        sqlite, _ = pair["sqlite"]
        for table in ("account", "txn_log", "customer", "branch"):
            assert memory.table_row_count(table) == (
                sqlite.table_row_count(table)
            ), table

    def test_column_stats(self, pair):
        """ANALYZE through sqlite_stat1 must be bitwise-identical to
        the engine's analyze_column — MCVs, histogram, and all."""
        memory, _ = pair["memory"]
        sqlite, _ = pair["sqlite"]
        for table in ("account", "txn_log", "customer"):
            mem_stats = memory.table_stats(table)
            lite_stats = sqlite.table_stats(table)
            assert mem_stats.row_count == lite_stats.row_count
            for column in memory.schema(table).column_names:
                mem_col = mem_stats.column(column)
                lite_col = lite_stats.column(column)
                where = f"{table}.{column}"
                assert mem_col.n_distinct == lite_col.n_distinct, where
                assert mem_col.null_fraction == (
                    lite_col.null_fraction
                ), where
                assert mem_col.min_value == lite_col.min_value, where
                assert mem_col.max_value == lite_col.max_value, where
                assert mem_col.mcv == lite_col.mcv, where
                assert mem_col.histogram == lite_col.histogram, where

    def test_index_sizes(self, pair):
        memory, _ = pair["memory"]
        sqlite, _ = pair["sqlite"]
        for definition in memory.index_defs():
            assert memory.index_size_bytes(definition) == (
                sqlite.index_size_bytes(definition)
            ), str(definition)


class TestWhatIfParity:
    def test_query_costs_agree(self, pair):
        memory, generator = pair["memory"]
        sqlite, _ = pair["sqlite"]
        config = memory.index_defs()
        for query in generator.queries(60, seed=2):
            mem_cost = memory.whatif_cost(
                memory.parse_statement(query.sql), config
            )
            lite_cost = sqlite.whatif_cost(
                sqlite.parse_statement(query.sql), config
            )
            assert mem_cost.total == pytest.approx(
                lite_cost.total
            ), query.sql
            assert mem_cost.maintenance_io == pytest.approx(
                lite_cost.maintenance_io
            ), query.sql


class TestTuningParity:
    def test_same_tuning_decision(self):
        """One full advisor round picks the same indexes everywhere."""
        outcomes = {}
        for name in ("memory", "sqlite"):
            generator = small_banking()
            db = create_backend(name)
            generator.build(db)
            advisor = AutoIndexAdvisor(
                db,
                storage_budget=2 * MiB,
                mcts_iterations=20,
                seed=13,
            )
            for query in generator.queries(150, seed=13):
                db.execute(query.sql)
                advisor.observe(query.sql)
            report = advisor.tune()
            outcomes[name] = (
                sorted(d.key for d in report.created),
                sorted(d.key for d in report.dropped),
                report.baseline_cost,
            )
        mem_created, mem_dropped, mem_cost = outcomes["memory"]
        lite_created, lite_dropped, lite_cost = outcomes["sqlite"]
        assert mem_created == lite_created
        assert mem_dropped == lite_dropped
        # Costs drift a hair after the write stream (the in-memory
        # engine costs real post-churn B+Tree shapes; SQLite costs
        # estimated shapes) but the tuning decision must not.
        assert mem_cost == pytest.approx(lite_cost, rel=1e-2)
