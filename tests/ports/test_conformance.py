"""Backend-conformance suite: the TuningBackend contract.

Each test runs against every registered adapter (see conftest), so
the in-memory engine and the SQLite adapter must agree on the
observable semantics the tuner depends on: hypothetical what-if
costing (add and mask), transactional DDL, usage accounting, and the
statement surface.
"""

from __future__ import annotations

import pytest

from repro.engine.faults import FaultError, FaultPlan, PERMANENT
from repro.engine.index import IndexDef
from repro.ports import create_backend
from repro.ports.backend import TuningBackend

from tests.ports.conftest import load_people

COMMUNITY_SQL = (
    "SELECT id FROM people WHERE community = 3 AND status = 'suspect'"
)
COMMUNITY_IX = IndexDef("people", ("community", "status"))


class TestProtocolSurface:
    def test_is_runtime_instance(self, backend):
        assert isinstance(backend, TuningBackend)

    def test_parse_and_fingerprint(self, people_backend):
        statement = people_backend.parse_statement(COMMUNITY_SQL)
        fp_direct = people_backend.fingerprint(statement)
        other = people_backend.parse_statement(
            "SELECT id FROM people WHERE community = 9 AND status = 'x'"
        )
        assert fp_direct == people_backend.fingerprint(other)

    def test_execute_outcome(self, people_backend):
        outcome = people_backend.execute(
            "SELECT COUNT(*) FROM people WHERE community = 3"
        )
        assert outcome.scalar >= 1
        assert outcome.cost > 0.0
        assert outcome.plan is not None

    def test_schema_and_stats(self, people_backend):
        assert people_backend.has_table("people")
        assert not people_backend.has_table("nope")
        assert people_backend.table_row_count("people") == 2000
        schema = people_backend.schema("people")
        assert schema.has_column("community")
        stats = people_backend.table_stats("people")
        assert stats.row_count == 2000
        assert stats.column("community").n_distinct == 20


class TestWhatIf:
    def test_hypothetical_add_lowers_cost(self, people_backend):
        statement = people_backend.parse_statement(COMMUNITY_SQL)
        existing = people_backend.index_defs()
        base = people_backend.whatif_cost(statement, existing)
        better = people_backend.whatif_cost(
            statement, existing + [COMMUNITY_IX]
        )
        assert better.total < base.total
        # Purely hypothetical: nothing was materialised.
        assert not people_backend.has_index(COMMUNITY_IX)
        assert people_backend.index_defs() == existing

    def test_mask_restores_unindexed_cost(self, people_backend):
        statement = people_backend.parse_statement(COMMUNITY_SQL)
        bare = people_backend.whatif_cost(statement, [])
        people_backend.create_index(COMMUNITY_IX)
        indexed = people_backend.whatif_cost(
            statement, people_backend.index_defs()
        )
        masked = people_backend.whatif_cost(statement, [])
        assert indexed.total < bare.total
        # Masking every real index re-produces the bare cost even
        # though the index physically exists.
        assert masked.total == pytest.approx(bare.total)

    def test_write_maintenance_components(self, people_backend):
        people_backend.create_index(COMMUNITY_IX)
        statement = people_backend.parse_statement(
            "UPDATE people SET community = 5 WHERE id = 10"
        )
        cost = people_backend.whatif_cost(
            statement, people_backend.index_defs()
        )
        assert cost.is_write
        assert cost.num_affected_indexes >= 1
        assert cost.maintenance_io > 0.0
        assert cost.total >= cost.data_cost

    def test_estimate_cost_matches_whatif_total(self, people_backend):
        statement = people_backend.parse_statement(COMMUNITY_SQL)
        total, plan = people_backend.estimate_cost(statement, [COMMUNITY_IX])
        assert total == pytest.approx(
            people_backend.whatif_cost(statement, [COMMUNITY_IX]).total
        )
        assert plan is not None


class TestDdl:
    def test_create_drop_roundtrip(self, people_backend):
        version = people_backend.catalog_version()
        people_backend.create_index(COMMUNITY_IX)
        assert people_backend.has_index(COMMUNITY_IX)
        assert people_backend.catalog_version() != version
        assert people_backend.index_size_bytes(COMMUNITY_IX) > 0
        assert people_backend.total_index_bytes() >= (
            people_backend.index_size_bytes(COMMUNITY_IX)
        )
        people_backend.drop_index(COMMUNITY_IX)
        assert not people_backend.has_index(COMMUNITY_IX)

    def test_duplicate_create_rejected(self, people_backend):
        people_backend.create_index(COMMUNITY_IX)
        with pytest.raises(ValueError):
            people_backend.create_index(COMMUNITY_IX)

    def test_drop_missing_raises(self, people_backend):
        with pytest.raises(KeyError):
            people_backend.drop_index(COMMUNITY_IX)

    def test_build_fault_is_atomic(self, backend_name):
        """An injected index.build fault must leave no trace."""
        db = create_backend(backend_name)
        load_people(db)
        # Attach faults after the build (schema setup is never chaos
        # tested — same convention as the bench harness).
        faults = (
            FaultPlan(seed=3)
            .add("index.build", schedule=[1], kind=PERMANENT)
            .injector()
        )
        db.faults = faults
        before = db.index_defs()
        version = db.catalog_version()
        with pytest.raises(FaultError):
            db.create_index(COMMUNITY_IX)
        assert not db.has_index(COMMUNITY_IX)
        assert db.index_defs() == before
        assert db.catalog_version() == version
        # The schedule only covers the first attempt: the retry lands.
        db.create_index(COMMUNITY_IX)
        assert db.has_index(COMMUNITY_IX)


class TestUsageCounters:
    def usage_of(self, db, definition):
        for usage in db.index_usage():
            if usage.definition.key == definition.key:
                return usage
        raise AssertionError(f"no usage row for {definition}")

    def test_lookup_counting(self, people_backend):
        people_backend.create_index(COMMUNITY_IX)
        people_backend.reset_index_usage()
        for _ in range(3):
            people_backend.execute(COMMUNITY_SQL)
        usage = self.usage_of(people_backend, COMMUNITY_IX)
        assert usage.lookups == 3

    def test_write_maintenance_counting(self, people_backend):
        people_backend.create_index(COMMUNITY_IX)
        people_backend.reset_index_usage()
        people_backend.execute(
            "INSERT INTO people (id, name, community, temperature, "
            "status) VALUES (9001, 'n', 3, 36.6, 'healthy')"
        )
        people_backend.execute(
            "UPDATE people SET community = 7 WHERE id = 9001"
        )
        usage = self.usage_of(people_backend, COMMUNITY_IX)
        # insert: 1 op; keyed update: delete+insert = 2 ops.
        assert usage.maintenance_ops == 3

    def test_reset_zeroes(self, people_backend):
        people_backend.create_index(COMMUNITY_IX)
        people_backend.execute(COMMUNITY_SQL)
        people_backend.reset_index_usage()
        usage = self.usage_of(people_backend, COMMUNITY_IX)
        assert usage.lookups == 0
        assert usage.maintenance_ops == 0

    def test_usage_epoch_bumps_on_reset_only(self, people_backend):
        # Incremental diagnosis keys its classification cache on the
        # usage epoch: a reset must move it, mere reads must not, and
        # catalog_version (which a reset leaves alone) must not be
        # relied on to see resets.
        epoch = people_backend.usage_epoch()
        catalog = people_backend.catalog_version()
        people_backend.execute(COMMUNITY_SQL)
        assert people_backend.usage_epoch() == epoch
        people_backend.reset_index_usage()
        assert people_backend.usage_epoch() > epoch
        assert people_backend.catalog_version() == catalog
