"""Benchmark harness tests."""

import pytest

from repro.bench.harness import (
    AdvisorKind,
    make_advisor,
    prepare_database,
    run_advisor_experiment,
    run_per_query,
    run_queries,
)
from repro.bench.reporting import (
    format_figure_series,
    format_table,
    improvement_counts,
    relative_change,
)
from repro.core.advisor import AutoIndexAdvisor
from repro.core.baselines import DefaultAdvisor, GreedyAdvisor
from repro.workloads import EpidemicWorkload


@pytest.fixture(scope="module")
def prepared():
    generator = EpidemicWorkload(people=800)
    db = prepare_database(generator)
    return generator, db


class TestFactories:
    def test_prepare_database_loads(self, prepared):
        generator, db = prepared
        assert db.table_row_count("people") == 800

    @pytest.mark.parametrize(
        "kind,cls",
        [
            (AdvisorKind.DEFAULT, DefaultAdvisor),
            (AdvisorKind.GREEDY, GreedyAdvisor),
            (AdvisorKind.AUTOINDEX, AutoIndexAdvisor),
        ],
    )
    def test_make_advisor(self, prepared, kind, cls):
        _generator, db = prepared
        assert isinstance(make_advisor(kind, db), cls)

    def test_hill_climb_flag(self, prepared):
        _generator, db = prepared
        advisor = make_advisor(AdvisorKind.HILL_CLIMB, db)
        assert advisor.marginal


class TestRunQueries:
    def test_stats_accumulate(self, prepared):
        generator, db = prepared
        stats = run_queries(db, generator.phase_w1(20, seed=4))
        assert stats.query_count == 20
        assert stats.total_cost > 0
        assert stats.read_cost == pytest.approx(stats.total_cost)

    def test_write_split(self, prepared):
        generator, db = prepared
        stats = run_queries(db, generator.phase_w2(20, seed=4))
        assert stats.write_cost > 0

    def test_throughput_metric(self, prepared):
        generator, db = prepared
        stats = run_queries(db, generator.phase_w1(10, seed=5))
        assert stats.throughput == pytest.approx(
            1000.0 * stats.query_count / stats.total_cost
        )

    def test_advisor_observes(self, prepared):
        generator, db = prepared
        advisor = AutoIndexAdvisor(db)
        run_queries(db, generator.phase_w1(15, seed=6), advisor)
        assert len(advisor.store) >= 1

    def test_per_query_costs(self, prepared):
        generator, db = prepared
        queries = generator.phase_w1(10, seed=7)
        result = run_per_query(db, queries)
        assert len(result.costs) >= 1
        assert all(cost >= 0 for cost in result.costs.values())


class TestExperiment:
    def test_full_experiment_shape(self):
        generator = EpidemicWorkload(people=600)
        result = run_advisor_experiment(
            generator,
            AdvisorKind.AUTOINDEX,
            train_queries=120,
            test_queries=60,
            mcts_iterations=25,
        )
        assert result.advisor == "AutoIndex"
        assert result.test_stats.query_count == 60
        assert result.index_bytes > 0
        assert result.tuning is not None

    def test_autoindex_beats_default_on_read_phase(self):
        auto = run_advisor_experiment(
            EpidemicWorkload(people=600), AdvisorKind.AUTOINDEX,
            train_queries=120, test_queries=60, mcts_iterations=25,
        )
        default = run_advisor_experiment(
            EpidemicWorkload(people=600), AdvisorKind.DEFAULT,
            train_queries=120, test_queries=60,
        )
        assert auto.total_latency < default.total_latency


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 22222.0]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "22,222" in text

    def test_format_figure_series(self):
        text = format_figure_series(
            "Fig X", ["1x", "10x"], {"AutoIndex": [1.0, 2.0]}
        )
        assert text.startswith("Fig X")
        assert "AutoIndex" in text

    def test_improvement_counts(self):
        reductions = {"q1": 0.5, "q2": 0.2, "q3": 0.05, "q4": -0.1}
        counts = improvement_counts(reductions)
        assert counts[0.10] == 2
        assert counts[0.30] == 1

    def test_relative_change(self):
        assert relative_change(100, 110) == pytest.approx(10.0)
        assert relative_change(0, 5) == 0.0


class TestQueryLevelExperiment:
    def test_query_level_advisor_runs_experiment(self):
        from repro.workloads import EpidemicWorkload

        result = run_advisor_experiment(
            EpidemicWorkload(people=500),
            AdvisorKind.QUERY_LEVEL,
            train_queries=60,
            test_queries=30,
            mcts_iterations=20,
        )
        assert result.advisor == "QueryLevel"
        assert result.tuning.statements_analyzed >= 60

    def test_without_defaults_builds_pk_only(self):
        from repro.workloads import EpidemicWorkload

        generator = EpidemicWorkload(people=300)
        db = prepare_database(generator, with_defaults=False)
        assert all(d.unique for d in db.index_defs())
