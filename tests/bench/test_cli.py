"""CLI entry point tests (list / argument handling; heavy experiment
runs are covered by the benchmarks themselves)."""

import pytest

from repro.bench import cli


class TestList:
    def test_list_prints_all_experiments(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for key in cli._EXPERIMENTS:
            assert key in out

    def test_every_experiment_module_resolves(self):
        for name in cli._EXPERIMENTS:
            compute = cli._load(name)
            assert callable(compute)


class TestRunArguments:
    def test_unknown_experiment_fails(self, capsys):
        assert cli.main(["run", "nope"]) == 1
        assert "unknown experiment" in capsys.readouterr().out

    def test_empty_run_is_an_error(self, capsys):
        assert cli.main(["run"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestSummarise:
    def test_nested_dict(self, capsys):
        cli._summarise({"a": 1, "b": {"c": 2}})
        out = capsys.readouterr().out
        assert "a: 1" in out
        assert "c: 2" in out

    def test_tuple_of_dicts(self, capsys):
        cli._summarise(({"x": 1}, {"y": 2}))
        out = capsys.readouterr().out
        assert "x: 1" in out and "y: 2" in out
