"""CLI entry point tests (list / argument handling; heavy experiment
runs are covered by the benchmarks themselves)."""

import pytest

from repro.bench import cli


class TestList:
    def test_list_prints_all_experiments(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for key in cli._EXPERIMENTS:
            assert key in out

    def test_every_experiment_module_resolves(self):
        for name in cli._EXPERIMENTS:
            compute = cli._load(name)
            assert callable(compute)


class TestRunArguments:
    def test_unknown_experiment_fails(self, capsys):
        assert cli.main(["run", "nope"]) == 1
        assert "unknown experiment" in capsys.readouterr().out

    def test_empty_run_is_an_error(self, capsys):
        assert cli.main(["run"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestSummarise:
    def test_nested_dict(self, capsys):
        cli._summarise({"a": 1, "b": {"c": 2}})
        out = capsys.readouterr().out
        assert "a: 1" in out
        assert "c: 2" in out

    def test_tuple_of_dicts(self, capsys):
        cli._summarise(({"x": 1}, {"y": 2}))
        out = capsys.readouterr().out
        assert "x: 1" in out and "y: 2" in out


class TestPerfArguments:
    def test_bad_workers_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["--perf", "mcts", "--workers", "0"])

    def test_unknown_perf_target_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["--perf", "nope"])


class TestPerfBenchSmoke:
    """Tiny end-to-end runs of the perf benchmarks."""

    def test_mcts_perf_three_modes(self, tmp_path):
        from repro.bench.perf import run_mcts_perf

        out = tmp_path / "mcts.json"
        report = run_mcts_perf(
            iterations=6, rounds=2, out_path=str(out),
            observe_queries=60, workers=2,
        )
        assert out.exists()
        assert report["identical_result"] is True
        for mode in ("full", "delta", "parallel"):
            assert report[mode]["wall_seconds"] > 0
        machine = report["machine"]
        assert machine["workers_requested"] == 2
        assert 1 <= machine["workers_effective"] <= 2
        assert report["parallel"]["workers_used"] == (
            machine["workers_effective"]
        )

    def test_ingest_perf_three_modes(self, tmp_path):
        from repro.bench.perf import run_ingest_perf

        out = tmp_path / "ingest.json"
        report = run_ingest_perf(
            queries=300, out_path=str(out), diagnosis_every=100
        )
        assert out.exists()
        assert report["identical_result"] is True
        assert report["normalizer_version"] >= 1
        assert report["machine"]["cpu_count"] >= 1
        for mode in ("full", "cached", "cached_incremental"):
            result = report[mode]
            assert result["queries_per_second"] > 0
            assert result["diagnosis_passes"] == 3
            assert result["templates"] == sum(
                result["shard_stats"].values()
            )
        # Full-parse mode never touches the raw-key cache; the fast
        # modes resolve nearly everything through it.
        assert report["full"]["raw_cache"]["hits"] == 0
        assert report["cached"]["raw_cache"]["hits"] > 0


class TestFaultsArguments:
    def test_regret_requires_faults(self):
        with pytest.raises(SystemExit):
            cli.main(["--regret"])

    def test_nonpositive_regret_bound_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["--faults", "--regret", "--regret-bound", "0"])

    def test_bad_fault_rate_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["--faults", "--rate", "1.5"])


class TestChaosBenchSmoke:
    """Tiny end-to-end runs of the chaos/regret scenarios."""

    def test_chaos_on_sqlite_backend(self, tmp_path):
        from repro.bench.chaos import run_chaos

        out = tmp_path / "chaos.json"
        report = run_chaos(
            seed=11, rate=0.2, rounds=2, queries_per_round=120,
            out_path=str(out), backend="sqlite",
        )
        assert out.exists()
        assert report["backend"] == "sqlite"
        assert report["ok"] is True
        assert report["replay_identical"]
        assert report["faults_off_identical"]

    def test_regret_stays_bounded_and_replays(self, tmp_path):
        from repro.bench.chaos import run_regret

        out = tmp_path / "regret.json"
        report = run_regret(
            seeds=(11,), rounds=3, queries_per_round=120,
            out_path=str(out),
        )
        assert out.exists()
        assert report["all_within_bound"]
        assert report["all_replay_identical"]
        row = report["per_seed"][0]
        assert row["cumulative_regret"] <= report["regret_bound"]
