"""Small-unit coverage: metric helpers, action rendering, stats utils."""

import pytest

from repro.bench.harness import RunStats
from repro.core.mcts import Action, SearchResult
from repro.core.templates import TemplateStore
from repro.engine.index import IndexDef
from repro.engine.metrics import IndexUsage
from repro.sql import ast, parse


class TestIndexUsage:
    def test_rarely_used_flag(self):
        usage = IndexUsage(
            definition=IndexDef(table="t", columns=("a",)), lookups=0
        )
        assert usage.is_rarely_used
        usage.lookups = 1
        assert not usage.is_rarely_used

    def test_maintenance_ratio(self):
        usage = IndexUsage(
            definition=IndexDef(table="t", columns=("a",)),
            lookups=4,
            maintenance_ops=20,
        )
        assert usage.maintenance_ratio() == 5.0

    def test_maintenance_ratio_no_lookups(self):
        usage = IndexUsage(
            definition=IndexDef(table="t", columns=("a",)),
            maintenance_ops=7,
        )
        assert usage.maintenance_ratio() == 7.0


class TestRunStats:
    def test_mean_cost(self):
        stats = RunStats(total_cost=100.0, query_count=4)
        assert stats.mean_cost == 25.0

    def test_mean_cost_empty(self):
        assert RunStats().mean_cost == 0.0

    def test_throughput_zero_cost(self):
        assert RunStats(query_count=5).throughput == 0.0


class TestMctsValueObjects:
    def test_action_rendering(self):
        definition = IndexDef(table="t", columns=("a", "b"))
        assert str(Action(kind="add", index=definition)) == "+t(a, b)"
        assert str(Action(kind="remove", index=definition)) == "-t(a, b)"

    def test_relative_improvement(self):
        result = SearchResult(
            best_config=[], best_benefit=25.0, baseline_cost=100.0,
            iterations=1, evaluations=1,
        )
        assert result.relative_improvement == 0.25

    def test_relative_improvement_zero_baseline(self):
        result = SearchResult(
            best_config=[], best_benefit=5.0, baseline_cost=0.0,
            iterations=1, evaluations=1,
        )
        assert result.relative_improvement == 0.0


class TestTemplateStoreUtilities:
    def test_total_frequency(self):
        store = TemplateStore()
        for _ in range(3):
            store.observe("SELECT a FROM t WHERE b = 1")
        store.observe("SELECT c FROM t")
        assert store.total_frequency() == 4.0

    def test_contains(self):
        store = TemplateStore()
        store.observe("SELECT a FROM t WHERE b = 1")
        assert "SELECT a FROM t WHERE b = $1" in store
        assert "nope" not in store

    def test_reset_window_clears_drift_counters(self):
        store = TemplateStore(drift_window=2, drift_miss_ratio=0.1)
        store.observe("SELECT a FROM t")
        store.observe("SELECT b FROM t")
        assert store.drift_detected()
        store.reset_window()
        assert not store.drift_detected()


class TestAstRendering:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a FROM t WHERE b IN (SELECT c FROM u)",
            "SELECT a FROM t WHERE b > (SELECT max(c) FROM u)",
            "SELECT t.* FROM t",
            "SELECT count(DISTINCT a) FROM t",
            "SELECT a FROM t WHERE NOT (b = 1 OR c = 2)",
            "SELECT a FROM t WHERE b IS NOT NULL ORDER BY a DESC",
        ],
    )
    def test_round_trips(self, sql):
        first = parse(sql)
        assert parse(str(first)) == first

    def test_literal_rendering(self):
        assert str(ast.Literal(value=None)) == "NULL"
        assert str(ast.Literal(value=True)) == "TRUE"
        assert str(ast.Literal(value="o'brien")) == "'o''brien'"
        assert str(ast.Literal(value=3.5)) == "3.5"

    def test_walk_counts_nodes(self):
        stmt = parse("SELECT a FROM t WHERE b = 1 AND c = 2")
        nodes = list(ast.walk(stmt))
        assert sum(1 for n in nodes if isinstance(n, ast.Comparison)) == 2
