"""Project graph layer: symbol linking over a fixture mini-package.

The fixture package exercises the resolution paths the
interprocedural checkers depend on: structural protocol matching,
inherited-method lookup, annotations through aliased imports, and
the conservative degradation for dynamic calls nothing can resolve.
"""

import ast
import textwrap

from repro.analysis.effects import EffectIndex, extract_file_summary
from repro.analysis.graph import (
    ModuleSymbols,
    ProjectGraph,
    extract_symbols,
    module_name_for,
)

FIXTURE = {
    "src/repro/ports/backend.py": """
    from typing import Protocol

    class TuningBackend(Protocol):
        name: str

        def create_index(self, definition) -> None: ...
        def drop_index(self, definition) -> None: ...
        def whatif_cost(self, sql) -> float: ...
        def catalog_version(self) -> int: ...
    """,
    "src/repro/engine/db.py": """
    class Database:
        def create_index(self, definition) -> None:
            self.version += 1

        def drop_index(self, definition) -> None:
            self.version += 1

        def whatif_cost(self, sql) -> float:
            return 1.0

        def catalog_version(self) -> int:
            return 0
    """,
    "src/repro/core/base.py": """
    class BaseSelector:
        def shared(self) -> float:
            return 0.0

        def overridden(self) -> float:
            return 0.0
    """,
    "src/repro/core/derived.py": """
    from repro.core.base import BaseSelector as Parent

    class ChildSelector(Parent):
        def overridden(self) -> float:
            return 1.0

        def uses_inherited(self) -> float:
            return self.shared()
    """,
    "src/repro/core/driver.py": """
    import repro.engine.db as dbmod
    from repro.ports.backend import TuningBackend

    def cost_round(backend: TuningBackend) -> float:
        return backend.whatif_cost("select 1")

    def make_db() -> "dbmod.Database":
        return dbmod.Database()

    def dynamic(obj, attr):
        handler = getattr(obj, attr)
        return handler()
    """,
}


def _symbols(path, source):
    return extract_symbols(path, ast.parse(textwrap.dedent(source)))


def _graph():
    return ProjectGraph(
        [_symbols(path, src) for path, src in FIXTURE.items()]
    )


def _effects():
    summaries = [
        extract_file_summary(path, ast.parse(textwrap.dedent(src)))
        for path, src in FIXTURE.items()
    ]
    graph = ProjectGraph([s.symbols for s in summaries])
    return graph, EffectIndex(graph, summaries)


def test_module_name_strips_src_prefix():
    assert (
        module_name_for("src/repro/core/driver.py")
        == "repro.core.driver"
    )
    assert module_name_for("src/repro/core/__init__.py") == "repro.core"


def test_protocol_detected_and_matched_structurally():
    graph = _graph()
    protocol = "repro.ports.backend:TuningBackend"
    assert graph.is_protocol(protocol)
    # Database never names the protocol, but implements its surface.
    assert protocol in graph.protocols_of("repro.engine.db:Database")


def test_calls_on_protocol_and_implementation_classify_alike():
    graph = _graph()
    protocol = "repro.ports.backend:TuningBackend"
    assert graph.protocol_for_call(protocol) == protocol
    assert (
        graph.protocol_for_call("repro.engine.db:Database") == protocol
    )
    # An unrelated class classifies against nothing.
    assert graph.protocol_for_call("repro.core.base:BaseSelector") is None


def test_inherited_method_resolves_through_aliased_base():
    graph = _graph()
    child = "repro.core.derived:ChildSelector"
    # Inherited: defined only on the (import-aliased) base.
    shared = graph.resolve_method(child, "shared")
    assert shared is not None
    assert shared.qualname == "repro.core.base:BaseSelector.shared"
    # Overridden: the child's definition wins over the base's.
    overridden = graph.resolve_method(child, "overridden")
    assert (
        overridden.qualname
        == "repro.core.derived:ChildSelector.overridden"
    )
    assert graph.mro(child)[0] == child


def test_module_alias_annotation_resolves():
    graph = _graph()
    fn = graph.resolve_function("repro.core.driver", "make_db")
    assert fn is not None
    assert fn.returns == "repro.engine.db:Database"


def test_protocol_typed_call_crosses_boundary_not_traversed():
    _graph_, effects = _effects()
    reached, protocol_calls = effects.walk_from(
        "repro.core.driver:cost_round"
    )
    assert [r.effects.qualname for r in reached] == [
        "repro.core.driver:cost_round"
    ]
    assert len(protocol_calls) == 1
    call, chain = protocol_calls[0]
    assert call.protocol == "repro.ports.backend:TuningBackend"
    assert call.method == "whatif_cost"
    assert chain == ("repro.core.driver:cost_round",)


def test_dynamic_call_degrades_to_unknown_callee():
    _graph_, effects = _effects()
    fn = effects.functions["repro.core.driver:dynamic"]
    # The getattr result is uncallable statically: recorded as an
    # unknown callee, not guessed at and not a crash.
    assert any(c.kind == "unknown" for c in fn.calls)
    reached, protocol_calls = effects.walk_from(
        "repro.core.driver:dynamic"
    )
    assert [r.effects.qualname for r in reached] == [
        "repro.core.driver:dynamic"
    ]
    assert protocol_calls == []


def test_symbols_round_trip_through_json_dict():
    for path, src in FIXTURE.items():
        symbols = _symbols(path, src)
        clone = ModuleSymbols.from_dict(symbols.to_dict())
        assert clone.to_dict() == symbols.to_dict()
