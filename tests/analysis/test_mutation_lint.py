"""Mutation tests: each interprocedural rule must catch its bug class
when seeded into the *real* tree.

Fixture packages prove the rules work in a lab; these prove they
guard this codebase. Each test copies ``src/repro`` wholesale,
re-introduces one representative regression textually, and asserts
the lint run turns red — so a refactor that silently de-fangs a rule
(renames the entry point, breaks type resolution on the real code)
fails CI even though every fixture still passes.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis.runner import analyze_paths

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    shutil.copytree(REPO_SRC, tmp_path / "src" / "repro")
    return tmp_path


def _mutate(root, rel_path, old, new):
    path = root / "src" / "repro" / rel_path
    source = path.read_text(encoding="utf-8")
    assert old in source, f"mutation anchor missing from {rel_path}"
    path.write_text(source.replace(old, new, 1), encoding="utf-8")


def _project_lint(root, rule):
    found = analyze_paths(
        [root / "src"],
        project_root=root,
        scope="project",
        select=[rule],
        use_cache=False,
    )
    return [v for v in found if v.rule == rule]


def test_unmutated_tree_is_clean(tree):
    for rule in ("fork-safety", "stage-effects", "cache-invalidation"):
        assert not _project_lint(tree, rule)


def test_deleting_touch_from_insert_fires_cache_invalidation(tree):
    _mutate(
        tree,
        "core/templates.py",
        "        self._size += 1\n        self._touch(shard_key)",
        "        self._size += 1",
    )
    found = _project_lint(tree, "cache-invalidation")
    assert found, "removing _insert's _touch went undetected"
    assert any(
        "_insert" in v.message and "_shards" in v.message for v in found
    )


def test_ddl_in_shadow_stage_fires_stage_effects(tree):
    # The shadow-evaluation stage's whole contract is that it judges
    # a candidate configuration *without* touching the catalog
    # (allows[]); DDL sneaking in must turn the lint red.
    anchor = (
        '        assert result is not None, '
        '"SearchStage must run before ShadowStage"'
    )
    _mutate(
        tree,
        "core/pipeline.py",
        anchor,
        anchor + "\n        ctx.backend.create_index(None)",
    )
    found = _project_lint(tree, "stage-effects")
    assert found, "DDL-create inside ShadowStage went undetected"
    assert any(
        "ShadowStage" in v.message and "ddl-create" in v.message
        for v in found
    )


def test_parent_state_write_in_pool_job_fires_fork_safety(tree):
    _mutate(
        tree,
        "core/mcts.py",
        "    fallbacks_before = selector.estimator.fallbacks",
        "    selector._root_ref = None\n"
        "    fallbacks_before = selector.estimator.fallbacks",
    )
    found = _project_lint(tree, "fork-safety")
    assert found, "parent-state write in _pool_cost_job went undetected"
    assert any(
        "_pool_cost_job" in v.message and "_root_ref" in v.message
        for v in found
    )
