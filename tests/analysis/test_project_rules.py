"""Bad/good fixture pairs for the three interprocedural rules.

Every rule gets a seeded violation that must be caught and a
corrected twin that must pass clean — the same convention the
per-file checkers use, but over a miniature on-disk project because
these rules need the linked cross-module graph.
"""

import textwrap

from repro.analysis.runner import analyze_paths

_BACKEND_PROTOCOL = """
from typing import Protocol

class TuningBackend(Protocol):
    parallel_safe: bool

    def create_index(self, definition) -> None: ...
    def drop_index(self, definition) -> None: ...
    def whatif_cost(self, sql) -> float: ...
    def reset_index_usage(self) -> None: ...
"""


def _cat(*parts):
    """Join module-level fixture chunks, dedenting each separately."""
    return "\n".join(textwrap.dedent(part) for part in parts)


def _lint(tmp_path, files, rule=None, scope="project"):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    found = analyze_paths(
        [tmp_path / "src"],
        project_root=tmp_path,
        scope=scope,
        use_cache=False,
    )
    if rule is not None:
        found = [v for v in found if v.rule == rule]
    return found


# ---------------------------------------------------------------------------
# fork-safety
# ---------------------------------------------------------------------------

_FORK_COMMON = """
import random
from concurrent.futures import ProcessPoolExecutor

from repro.ports.backend import TuningBackend

class SearchState:
    def __init__(self, seed: int):
        self.best = None
        self.rng = random.Random(seed)
"""

_FORK_BAD = _FORK_COMMON + """
def cost_job(state: SearchState, backend: TuningBackend, keys):
    state.best = keys                  # parent-visible write
    backend.create_index("idx")        # worker-side DDL
    return state.rng.random()          # parent rng stream

def fan_out(backend: TuningBackend, state, items):
    if not getattr(backend, "parallel_safe", False):
        return []
    pool = ProcessPoolExecutor()
    return [pool.submit(cost_job, state, backend, i) for i in items]
"""

_FORK_GOOD = _FORK_COMMON + """
def cost_job(state: SearchState, backend: TuningBackend, keys):
    return backend.whatif_cost("select 1")

def fan_out(backend: TuningBackend, state, items):
    if not getattr(backend, "parallel_safe", False):
        return []
    pool = ProcessPoolExecutor()
    return [pool.submit(cost_job, state, backend, i) for i in items]
"""


def test_fork_safety_bad_flags_write_rng_and_ddl(tmp_path):
    found = _lint(
        tmp_path,
        {
            "src/repro/ports/backend.py": _BACKEND_PROTOCOL,
            "src/repro/core/search.py": _FORK_BAD,
        },
        rule="fork-safety",
    )
    messages = "\n".join(v.message for v in found)
    assert "SearchState.best" in messages
    assert "create_index" in messages
    assert "rng" in messages
    assert all(v.path == "src/repro/core/search.py" for v in found)


def test_fork_safety_good_passes_clean(tmp_path):
    assert not _lint(
        tmp_path,
        {
            "src/repro/ports/backend.py": _BACKEND_PROTOCOL,
            "src/repro/core/search.py": _FORK_GOOD,
        },
        rule="fork-safety",
    )


def test_fork_safety_pool_without_parallel_safe_probe(tmp_path):
    bad = _cat(
        _FORK_COMMON,
        """
        def cost_job(state: SearchState, keys):
            return 0.0

        def fan_out(state, items):
            pool = ProcessPoolExecutor()
            return [pool.submit(cost_job, state, i) for i in items]
        """,
    )
    found = _lint(
        tmp_path,
        {
            "src/repro/ports/backend.py": _BACKEND_PROTOCOL,
            "src/repro/core/search.py": bad,
        },
        rule="fork-safety",
    )
    assert any("parallel_safe" in v.message for v in found)


def test_fork_safety_honors_inline_suppression(tmp_path):
    suppressed = _cat(
        _FORK_COMMON,
        """
        def cost_job(state: SearchState, backend: TuningBackend, keys):
            backend.create_index("idx")
            draw = state.rng.random()
            state.best = keys  # lint: ignore[fork-safety] -- fixture: documented exception
            return draw

        def fan_out(backend: TuningBackend, state, items):
            if not getattr(backend, "parallel_safe", False):
                return []
            pool = ProcessPoolExecutor()
            return [pool.submit(cost_job, state, backend, i) for i in items]
        """,
    )
    found = _lint(
        tmp_path,
        {
            "src/repro/ports/backend.py": _BACKEND_PROTOCOL,
            "src/repro/core/search.py": suppressed,
        },
        rule="fork-safety",
    )
    assert not any("SearchState.best" in v.message for v in found)
    # The other two seeded violations still report.
    assert any("create_index" in v.message for v in found)
    assert any("rng" in v.message for v in found)


# ---------------------------------------------------------------------------
# stage-effects
# ---------------------------------------------------------------------------

_STAGE_COMMON = """
from repro.ports.backend import TuningBackend

class Ctx:
    def __init__(self, backend: TuningBackend):
        self.backend = backend
"""


def test_stage_effects_bad_ddl_outside_contract(tmp_path):
    bad = _cat(
        _STAGE_COMMON,
        """
        class ObserveStage:
            # effect: allows[ddl-drop]
            def run(self, ctx: Ctx) -> None:
                ctx.backend.drop_index("i")
                self._refresh(ctx)

            def _refresh(self, ctx: Ctx) -> None:
                ctx.backend.create_index("i")
        """,
    )
    found = _lint(
        tmp_path,
        {
            "src/repro/ports/backend.py": _BACKEND_PROTOCOL,
            "src/repro/core/pipeline.py": bad,
        },
        rule="stage-effects",
    )
    assert len(found) == 1
    assert "create_index" in found[0].message
    assert "ddl-create" in found[0].message
    # Flagged at the offending helper call site, with the chain.
    assert "_refresh" in found[0].message


def test_stage_effects_good_within_contract(tmp_path):
    good = _cat(
        _STAGE_COMMON,
        """
        class ObserveStage:
            # effect: allows[ddl-drop]
            def run(self, ctx: Ctx) -> None:
                ctx.backend.drop_index("i")
        """,
    )
    assert not _lint(
        tmp_path,
        {
            "src/repro/ports/backend.py": _BACKEND_PROTOCOL,
            "src/repro/core/pipeline.py": good,
        },
        rule="stage-effects",
    )


def test_stage_effects_missing_contract_flagged(tmp_path):
    bare = _cat(
        _STAGE_COMMON,
        """
        class DriftStage:
            def run(self, ctx: Ctx) -> None:
                return None
        """,
    )
    found = _lint(
        tmp_path,
        {
            "src/repro/ports/backend.py": _BACKEND_PROTOCOL,
            "src/repro/core/pipeline.py": bare,
        },
        rule="stage-effects",
    )
    assert len(found) == 1
    assert "no effect contract" in found[0].message


def test_stage_effects_unknown_token_flagged(tmp_path):
    typo = _cat(
        _STAGE_COMMON,
        """
        class DriftStage:
            # effect: allows[ddl-dorp]
            def run(self, ctx: Ctx) -> None:
                return None
        """,
    )
    found = _lint(
        tmp_path,
        {
            "src/repro/ports/backend.py": _BACKEND_PROTOCOL,
            "src/repro/core/pipeline.py": typo,
        },
        rule="stage-effects",
    )
    assert len(found) == 1
    assert "ddl-dorp" in found[0].message


def test_stage_effects_store_write_needs_permission(tmp_path):
    store = """
    class TemplateStore:
        def __init__(self):
            self._version = 0

        def begin_window(self) -> None:
            self._version = self._version + 1
    """
    stage = """
    from repro.core.templates import TemplateStore

    class Ctx:
        def __init__(self, store: TemplateStore):
            self.store = store

    class ApplyStage:
        # effect: allows[]
        def run(self, ctx: Ctx) -> None:
            ctx.store.begin_window()
    """
    files = {
        "src/repro/core/templates.py": store,
        "src/repro/core/pipeline.py": stage,
    }
    found = _lint(tmp_path, dict(files), rule="stage-effects")
    assert len(found) == 1
    assert "store-write" in found[0].message
    files["src/repro/core/pipeline.py"] = stage.replace(
        "allows[]", "allows[store-write]"
    )
    assert not _lint(tmp_path, files, rule="stage-effects")


# ---------------------------------------------------------------------------
# cache-invalidation
# ---------------------------------------------------------------------------

_STORE_HEADER = """
class Store:
    # cache-keys: fields[_shards] invalidator[_touch]
    def __init__(self):
        self._shards = {}
        self._version = 0

    def _touch(self):
        self._version += 1
"""


def test_cache_invalidation_branch_without_touch(tmp_path):
    bad = _STORE_HEADER + """
    def remove(self, key):
        if key in self._shards:
            del self._shards[key]
    """
    found = _lint(
        tmp_path,
        {"src/repro/core/store.py": bad},
        rule="cache-invalidation",
    )
    assert len(found) == 1
    assert "_shards" in found[0].message
    assert "_touch" in found[0].message


def test_cache_invalidation_touch_after_branch_is_clean(tmp_path):
    good = _STORE_HEADER + """
    def remove(self, key):
        if key in self._shards:
            del self._shards[key]
        self._touch()
    """
    assert not _lint(
        tmp_path,
        {"src/repro/core/store.py": good},
        rule="cache-invalidation",
    )


def test_cache_invalidation_early_return_path_flagged(tmp_path):
    bad = _STORE_HEADER + """
    def put(self, key, value, dry_run):
        self._shards[key] = value
        if dry_run:
            return None
        self._touch()
    """
    found = _lint(
        tmp_path,
        {"src/repro/core/store.py": bad},
        rule="cache-invalidation",
    )
    assert len(found) == 1


def test_cache_invalidation_clean_helper_counts(tmp_path):
    good = _STORE_HEADER + """
    def evict(self, key):
        del self._shards[key]
        self._finish()

    def _finish(self):
        self._touch()
    """
    assert not _lint(
        tmp_path,
        {"src/repro/core/store.py": good},
        rule="cache-invalidation",
    )


def test_cache_invalidation_dirty_helper_flagged_once_at_source(tmp_path):
    bad = _STORE_HEADER + """
    def evict(self, key):
        self._drop(key)

    def _drop(self, key):
        self._shards.pop(key, None)
    """
    found = _lint(
        tmp_path,
        {"src/repro/core/store.py": bad},
        rule="cache-invalidation",
    )
    # The helper that forgot to invalidate owns the violation; the
    # caller is not separately blamed.
    assert len(found) == 1
    assert "_drop" in found[0].message


def test_cache_invalidation_missing_invalidator_method(tmp_path):
    bad = """
    class Store:
        # cache-keys: fields[_shards] invalidator[_bump]
        def __init__(self):
            self._shards = {}
    """
    found = _lint(
        tmp_path,
        {"src/repro/core/store.py": bad},
        rule="cache-invalidation",
    )
    assert len(found) == 1
    assert "_bump" in found[0].message


# ---------------------------------------------------------------------------
# scope plumbing
# ---------------------------------------------------------------------------


def test_file_scope_skips_project_rules(tmp_path):
    found = _lint(
        tmp_path,
        {
            "src/repro/ports/backend.py": _BACKEND_PROTOCOL,
            "src/repro/core/search.py": _FORK_BAD,
        },
        scope="file",
    )
    assert not [v for v in found if v.rule == "fork-safety"]
