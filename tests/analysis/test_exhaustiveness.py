"""Exhaustiveness checker tests against a miniature on-disk package.

The checker reads the node universe from ``<package root>/sql/ast.py``,
so these fixtures build a real (tmp) tree instead of using in-memory
snippets."""

import textwrap

from repro.analysis import analyze_paths

_AST_SRC = """
from dataclasses import dataclass


class Node:
    pass


class Expr(Node):
    pass


@dataclass
class A(Expr):
    pass


@dataclass
class B(Expr):
    pass


@dataclass
class C(Expr):
    pass
"""


def _make_tree(tmp_path, dispatcher_src):
    root = tmp_path / "src" / "repro"
    (root / "sql").mkdir(parents=True)
    (root / "engine").mkdir()
    (root / "sql" / "ast.py").write_text(textwrap.dedent(_AST_SRC))
    (root / "engine" / "dispatch.py").write_text(
        textwrap.dedent(dispatcher_src)
    )
    return root


def _exhaustive_violations(tmp_path, dispatcher_src):
    root = _make_tree(tmp_path, dispatcher_src)
    found = analyze_paths(
        [root / "engine" / "dispatch.py"], project_root=tmp_path
    )
    return [v for v in found if v.rule == "ast-exhaustive"]


def test_auto_closed_dispatcher_missing_class(tmp_path):
    found = _exhaustive_violations(
        tmp_path,
        """
        from repro.sql import ast

        def eval_node(node):
            if isinstance(node, ast.A):
                return 1
            if isinstance(node, ast.B):
                return 2
            raise TypeError(node)
        """,
    )
    assert len(found) == 1
    assert "C" in found[0].message


def test_auto_closed_dispatcher_complete(tmp_path):
    found = _exhaustive_violations(
        tmp_path,
        """
        from repro.sql import ast

        def eval_node(node):
            if isinstance(node, ast.A):
                return 1
            if isinstance(node, ast.B):
                return 2
            if isinstance(node, ast.C):
                return 3
            raise TypeError(node)
        """,
    )
    assert not found


def test_marker_fallthrough_closes_the_gap(tmp_path):
    found = _exhaustive_violations(
        tmp_path,
        """
        from repro.sql import ast

        # lint: exhaustive[Expr] fallthrough=C
        def eval_node(node):
            if isinstance(node, ast.A):
                return 1
            if isinstance(node, ast.B):
                return 2
            raise TypeError(node)
        """,
    )
    assert not found


def test_marker_stale_fallthrough_flagged(tmp_path):
    found = _exhaustive_violations(
        tmp_path,
        """
        from repro.sql import ast

        # lint: exhaustive[Expr] fallthrough=C,Zzz
        def eval_node(node):
            if isinstance(node, ast.A):
                return 1
            if isinstance(node, ast.B):
                return 2
            raise TypeError(node)
        """,
    )
    assert len(found) == 1
    assert "Zzz" in found[0].message


def test_open_dispatcher_without_marker_ignored(tmp_path):
    # No final raise and no marker: not a closed dispatcher, so an
    # incomplete ladder is allowed.
    found = _exhaustive_violations(
        tmp_path,
        """
        from repro.sql import ast

        def maybe(node):
            if isinstance(node, ast.A):
                return 1
            if isinstance(node, ast.B):
                return 2
            return None
        """,
    )
    assert not found
