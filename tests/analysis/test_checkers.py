"""Fixture pairs for every lint rule: each seeded violation is caught,
and the corrected twin passes clean."""

import textwrap

from repro.analysis import analyze_snippet


def _violations(source, virtual_path, rule):
    source = textwrap.dedent(source)
    return [
        v
        for v in analyze_snippet(source, virtual_path)
        if v.rule == rule
    ]


# ---------------------------------------------------------------------------
# determinism: unseeded-random
# ---------------------------------------------------------------------------


def test_unseeded_random_bad():
    bad = """
    import random

    def pick(items):
        return random.choice(items)
    """
    found = _violations(bad, "src/repro/core/pick.py", "unseeded-random")
    assert len(found) == 1
    assert "random.choice()" in found[0].message


def test_unseeded_random_good_seeded_instance():
    good = """
    import random

    def pick(items, seed):
        rng = random.Random(seed)
        return rng.choice(items)
    """
    assert not _violations(
        good, "src/repro/core/pick.py", "unseeded-random"
    )


def test_unseeded_numpy_default_rng():
    bad = """
    import numpy as np

    def draw():
        return np.random.default_rng().random()
    """
    good = """
    import numpy as np

    def draw(seed):
        return np.random.default_rng(seed).random()
    """
    assert _violations(bad, "src/repro/core/d.py", "unseeded-random")
    assert not _violations(good, "src/repro/core/d.py", "unseeded-random")


def test_unseeded_random_direct_import():
    bad = """
    from random import shuffle

    def mix(items):
        shuffle(items)
        return items
    """
    found = _violations(bad, "src/repro/engine/mix.py", "unseeded-random")
    assert len(found) == 1


# ---------------------------------------------------------------------------
# determinism: wall-clock
# ---------------------------------------------------------------------------

_CLOCK_SRC = """
import time

def now():
    return time.perf_counter()
"""


def test_wall_clock_flagged_in_core():
    found = _violations(_CLOCK_SRC, "src/repro/core/clock.py", "wall-clock")
    assert len(found) == 1
    assert "Stopwatch" in found[0].message


def test_wall_clock_allowed_in_bench_and_metrics():
    assert not _violations(
        _CLOCK_SRC, "src/repro/bench/clock.py", "wall-clock"
    )
    assert not _violations(
        _CLOCK_SRC, "src/repro/engine/metrics.py", "wall-clock"
    )


# ---------------------------------------------------------------------------
# determinism: unordered-iteration
# ---------------------------------------------------------------------------


def test_unordered_iteration_bad():
    bad = """
    def order(items):
        seen = set(items)
        out = []
        for item in seen:
            out.append(item)
        return out
    """
    found = _violations(
        bad, "src/repro/core/order.py", "unordered-iteration"
    )
    assert len(found) == 1
    assert "PYTHONHASHSEED" in found[0].message


def test_unordered_iteration_good_sorted():
    good = """
    def order(items):
        seen = set(items)
        out = []
        for item in sorted(seen):
            out.append(item)
        return out
    """
    assert not _violations(
        good, "src/repro/core/order.py", "unordered-iteration"
    )


def test_unordered_iteration_outside_core_engine_ignored():
    bad = """
    def order(items):
        seen = set(items)
        return [item for item in seen]
    """
    assert not _violations(
        bad, "src/repro/workloads/order.py", "unordered-iteration"
    )


def test_order_free_reductions_pass():
    good = """
    def summarize(items):
        seen = set(items)
        return len(seen), sorted(seen), min(seen)
    """
    assert not _violations(
        good, "src/repro/engine/s.py", "unordered-iteration"
    )


# ---------------------------------------------------------------------------
# cache-key
# ---------------------------------------------------------------------------


def test_cache_key_missing_parameter():
    bad = """
    class Estimator:
        def __init__(self):
            self._cache = {}

        def cost(self, table, width):
            key = (table,)
            hit = self._cache.get(key)
            if hit is not None:
                return hit
            value = width * 2.0
            self._cache[key] = value
            return value
    """
    found = _violations(bad, "src/repro/core/est.py", "cache-key")
    assert len(found) == 1
    assert "width" in found[0].message


def test_cache_key_complete_passes():
    good = """
    class Estimator:
        def __init__(self):
            self._cache = {}

        def cost(self, table, width):
            key = (table, width)
            hit = self._cache.get(key)
            if hit is not None:
                return hit
            value = width * 2.0
            self._cache[key] = value
            return value
    """
    assert not _violations(good, "src/repro/core/est.py", "cache-key")


def test_cache_key_mutable_attr_not_in_key():
    bad = """
    class Model:
        def __init__(self):
            self._memo = {}
            self._bias = 0.0

        def set_bias(self, bias):
            self._bias = bias

        def predict(self, table, width):
            key = (table, width)
            hit = self._memo.get(key)
            if hit is not None:
                return hit
            value = width * self._bias
            self._memo[key] = value
            return value
    """
    good = bad.replace("key = (table, width)", "key = (table, width, self._bias)")
    found = _violations(bad, "src/repro/core/m.py", "cache-key")
    assert len(found) == 1
    assert "_bias" in found[0].message
    assert not _violations(good, "src/repro/core/m.py", "cache-key")


def test_cache_key_normalizer_version_missing():
    bad = """
    from repro.sql.normalize import normalize_sql

    class Store:
        def __init__(self):
            self._raw_cache = {}

        def lookup(self, sql):
            key = normalize_sql(sql)
            hit = self._raw_cache.get(key)
            if hit is not None:
                return hit
            value = self._parse(sql)
            self._raw_cache[key] = value
            return value
    """
    found = _violations(bad, "src/repro/core/store.py", "cache-key")
    assert len(found) == 1
    assert "NORMALIZER_VERSION" in found[0].message
    assert "normalize_sql" in found[0].message


def test_cache_key_normalizer_version_present():
    good = """
    from repro.sql.normalize import NORMALIZER_VERSION, normalize_sql

    class Store:
        def __init__(self):
            self._raw_cache = {}

        def lookup(self, sql):
            key = (NORMALIZER_VERSION, normalize_sql(sql))
            hit = self._raw_cache.get(key)
            if hit is not None:
                return hit
            value = self._parse(sql)
            self._raw_cache[key] = value
            return value
    """
    assert not _violations(good, "src/repro/core/store.py", "cache-key")


def test_cache_key_raw_key_constructor_passes():
    good = """
    from repro.sql.normalize import raw_key

    class Store:
        def __init__(self):
            self._raw_cache = {}

        def lookup(self, sql):
            key = raw_key(sql)
            hit = self._raw_cache.get(key)
            if hit is not None:
                return hit
            value = self._parse(sql)
            self._raw_cache[key] = value
            return value
    """
    assert not _violations(good, "src/repro/core/store.py", "cache-key")


# ---------------------------------------------------------------------------
# frozen-mutation
# ---------------------------------------------------------------------------


def test_frozen_mutation_cache_hit_write():
    bad = """
    class Planner:
        def plan(self, key):
            plan = self._plan_cache.get(key)
            if plan is None:
                return None
            plan.rows = 10
            return plan
    """
    found = _violations(bad, "src/repro/engine/p.py", "frozen-mutation")
    assert len(found) == 1
    assert "copy" in found[0].message


def test_frozen_mutation_copy_first_passes():
    good = """
    class Planner:
        def plan(self, key):
            plan = self._plan_cache.get(key)
            if plan is None:
                return None
            plan = dict(plan)
            plan["rows"] = 10
            return plan
    """
    assert not _violations(good, "src/repro/engine/p.py", "frozen-mutation")


def test_frozen_mutation_snapshot_mutator_call():
    bad = """
    class Tree:
        def expand(self, node):
            costs = node.costs
            costs.append(1.0)
            return costs
    """
    good = """
    class Tree:
        def expand(self, node):
            costs = list(node.costs)
            costs.append(1.0)
            return costs
    """
    assert _violations(bad, "src/repro/core/t.py", "frozen-mutation")
    assert not _violations(good, "src/repro/core/t.py", "frozen-mutation")


# ---------------------------------------------------------------------------
# layer
# ---------------------------------------------------------------------------


def test_layer_engine_must_not_import_core():
    bad = """
    from repro.core.estimator import CostModel
    """
    found = _violations(bad, "src/repro/engine/uses_core.py", "layer")
    assert len(found) == 1


def test_layer_core_may_import_engine():
    good = """
    from repro.engine.metrics import Stopwatch
    """
    assert not _violations(good, "src/repro/core/uses_engine.py", "layer")


def test_layer_bench_import_ban():
    bad = """
    from repro.bench import harness
    """
    assert _violations(bad, "src/repro/core/uses_bench.py", "layer")
    # __main__ entry points are the sanctioned wiring location.
    assert not _violations(bad, "src/repro/__main__.py", "layer")


def test_layer_core_must_not_import_concrete_database():
    """core reaches the database only through the ports protocol."""
    direct = """
    from repro.engine.database import Database
    """
    via_package = """
    from repro.engine import database
    """
    executor = """
    import repro.engine.executor
    """
    assert _violations(direct, "src/repro/core/x.py", "layer")
    assert _violations(via_package, "src/repro/core/x.py", "layer")
    assert _violations(executor, "src/repro/core/x.py", "layer")
    # Engine value types stay importable from core...
    ok = """
    from repro.engine.index import IndexDef
    from repro.engine.faults import FaultInjector
    """
    assert not _violations(ok, "src/repro/core/x.py", "layer")
    # ...and the adapters themselves may of course import the facade.
    assert not _violations(direct, "src/repro/ports/memory.py", "layer")


def test_layer_ports_placement():
    good = """
    from repro.engine.catalog import Catalog
    from repro.sql import ast
    """
    assert not _violations(good, "src/repro/ports/adapter.py", "layer")
    # ports sits below core: it must not import the tuner...
    bad_up = """
    from repro.core.estimator import BenefitEstimator
    """
    assert _violations(bad_up, "src/repro/ports/adapter.py", "layer")
    # ...and the engine must not know about its adapters.
    bad_down = """
    from repro.ports.backend import TuningBackend
    """
    assert _violations(bad_down, "src/repro/engine/planner2.py", "layer")


# ---------------------------------------------------------------------------
# determinism: unordered-merge
# ---------------------------------------------------------------------------


def test_as_completed_flagged_in_core():
    bad = """
    from concurrent.futures import as_completed

    def merge(futures):
        return [f.result() for f in as_completed(futures)]
    """
    found = _violations(
        bad, "src/repro/core/pool.py", "unordered-merge"
    )
    assert len(found) == 1
    assert "submission order" in found[0].message


def test_as_completed_attribute_call_flagged():
    bad = """
    import concurrent.futures

    def merge(futures):
        for f in concurrent.futures.as_completed(futures):
            yield f.result()
    """
    assert _violations(
        bad, "src/repro/engine/pool.py", "unordered-merge"
    )


def test_wait_first_completed_flagged():
    bad = """
    from concurrent import futures

    def first(fs):
        done, _ = futures.wait(
            fs, return_when=futures.FIRST_COMPLETED
        )
        return done
    """
    assert _violations(
        bad, "src/repro/core/pool.py", "unordered-merge"
    )


def test_submission_order_merge_passes():
    good = """
    def merge(futures):
        return [f.result() for f in futures]
    """
    assert not _violations(
        good, "src/repro/core/pool.py", "unordered-merge"
    )


def test_as_completed_allowed_outside_ordered_layers():
    ok = """
    from concurrent.futures import as_completed

    def merge(futures):
        return [f.result() for f in as_completed(futures)]
    """
    assert not _violations(
        ok, "src/repro/bench/pool.py", "unordered-merge"
    )
