"""End-to-end CLI tests: ``python -m repro.lint`` as CI runs it."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_lint(args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_own_tree_is_clean():
    """The shipped tree must lint clean — the CI gate."""
    result = _run_lint([str(REPO_ROOT / "src" / "repro")])
    assert result.returncode == 0, result.stdout + result.stderr


def test_violating_tree_exits_nonzero(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import random\n\ndef f(x):\n    return random.choice(x)\n"
    )
    result = _run_lint([str(tmp_path / "src")])
    assert result.returncode == 1
    assert "unseeded-random" in result.stdout


def test_write_baseline_then_clean(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import random\n\ndef f(x):\n    return random.choice(x)\n"
    )
    accepted = _run_lint(["--write-baseline", str(tmp_path / "src")])
    assert accepted.returncode == 0
    # Baselined violations no longer fail the run...
    result = _run_lint([str(tmp_path / "src")])
    assert result.returncode == 0
    assert "baselined" in result.stdout
    # ...but --no-baseline still reports them.
    strict = _run_lint(["--no-baseline", str(tmp_path / "src")])
    assert strict.returncode == 1


def test_json_format(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import random\n\ndef f(x):\n    return random.choice(x)\n"
    )
    result = _run_lint(["--format", "json", str(tmp_path / "src")])
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload and payload[0]["rule"] == "unseeded-random"
    assert payload[0]["fingerprint"]


def test_list_checkers_names_all_five():
    result = _run_lint(["--list-checkers"])
    assert result.returncode == 0
    for name in (
        "determinism",
        "cache-key",
        "frozen-mutation",
        "layer",
        "ast-exhaustive",
    ):
        assert name in result.stdout


def test_missing_target_exits_two(tmp_path):
    result = _run_lint([str(tmp_path / "no-such-dir")])
    assert result.returncode == 2


_FORK_BAD_TREE = """\
import random
from typing import Protocol
from concurrent.futures import ProcessPoolExecutor


class TuningBackend(Protocol):
    parallel_safe: bool

    def create_index(self, definition) -> None: ...
    def whatif_cost(self, sql) -> float: ...


class SearchState:
    def __init__(self, seed: int):
        self.best = None
        self.rng = random.Random(seed)


def cost_job(state: SearchState, keys):
    state.best = keys
    return 0.0


def fan_out(backend: TuningBackend, state, items):
    if not getattr(backend, "parallel_safe", False):
        return []
    pool = ProcessPoolExecutor()
    return [pool.submit(cost_job, state, i) for i in items]
"""


def _fork_project(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "search.py").write_text(_FORK_BAD_TREE)
    return tmp_path


def test_scope_splits_file_and_project_passes(tmp_path):
    root = _fork_project(tmp_path)
    fast = _run_lint(["--scope", "file", str(root / "src")], cwd=root)
    assert fast.returncode == 0, fast.stdout + fast.stderr
    deep = _run_lint(["--scope", "project", str(root / "src")], cwd=root)
    assert deep.returncode == 1
    assert "fork-safety" in deep.stdout


def test_no_cache_flag_pins_cold_mode(tmp_path):
    root = _fork_project(tmp_path)
    cold = _run_lint(
        ["--scope", "project", "--no-cache", str(root / "src")], cwd=root
    )
    assert cold.returncode == 1
    assert not (root / ".lint-cache").exists()
    warm = _run_lint(["--scope", "project", str(root / "src")], cwd=root)
    assert (root / ".lint-cache" / "effects.json").exists()
    assert warm.stdout == cold.stdout


def test_explain_prints_rationale_and_example():
    result = _run_lint(["--explain", "fork-safety"])
    assert result.returncode == 0
    assert "rationale:" in result.stdout
    assert "example finding:" in result.stdout
    assert "workers=N" in result.stdout


def test_explain_unknown_rule_exits_2():
    result = _run_lint(["--explain", "no-such-rule"])
    assert result.returncode == 2
    assert "known:" in result.stderr
