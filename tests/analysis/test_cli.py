"""End-to-end CLI tests: ``python -m repro.lint`` as CI runs it."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_lint(args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_own_tree_is_clean():
    """The shipped tree must lint clean — the CI gate."""
    result = _run_lint([str(REPO_ROOT / "src" / "repro")])
    assert result.returncode == 0, result.stdout + result.stderr


def test_violating_tree_exits_nonzero(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import random\n\ndef f(x):\n    return random.choice(x)\n"
    )
    result = _run_lint([str(tmp_path / "src")])
    assert result.returncode == 1
    assert "unseeded-random" in result.stdout


def test_write_baseline_then_clean(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import random\n\ndef f(x):\n    return random.choice(x)\n"
    )
    accepted = _run_lint(["--write-baseline", str(tmp_path / "src")])
    assert accepted.returncode == 0
    # Baselined violations no longer fail the run...
    result = _run_lint([str(tmp_path / "src")])
    assert result.returncode == 0
    assert "baselined" in result.stdout
    # ...but --no-baseline still reports them.
    strict = _run_lint(["--no-baseline", str(tmp_path / "src")])
    assert strict.returncode == 1


def test_json_format(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import random\n\ndef f(x):\n    return random.choice(x)\n"
    )
    result = _run_lint(["--format", "json", str(tmp_path / "src")])
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload and payload[0]["rule"] == "unseeded-random"
    assert payload[0]["fingerprint"]


def test_list_checkers_names_all_five():
    result = _run_lint(["--list-checkers"])
    assert result.returncode == 0
    for name in (
        "determinism",
        "cache-key",
        "frozen-mutation",
        "layer",
        "ast-exhaustive",
    ):
        assert name in result.stdout


def test_missing_target_exits_two(tmp_path):
    result = _run_lint([str(tmp_path / "no-such-dir")])
    assert result.returncode == 2
