"""Effect extraction and the persistent summary cache.

Extraction is a pure function of file content, which is what makes
the ``.lint-cache/`` layer sound: these tests pin both halves — the
local summaries the checkers consume, and the invariant that a warm
cache run reports exactly what a cold run does.
"""

import ast
import json
import textwrap

from repro.analysis.effects import (
    ANALYZER_VERSION,
    EffectIndex,
    FileSummary,
    extract_file_summary,
)
from repro.analysis.graph import ProjectGraph
from repro.analysis.runner import analyze_paths

# ---------------------------------------------------------------------------
# Local summary extraction
# ---------------------------------------------------------------------------


def _summary(source, path="src/repro/core/mod.py"):
    return extract_file_summary(
        path, ast.parse(textwrap.dedent(source))
    )


def test_self_write_kinds():
    summary = _summary(
        """
        class Store:
            def touch(self):
                self.plain = 1
                self.counter += 1
                self.items["k"] = 2
                del self.gone
                self.bag.append(3)
        """
    )
    fn = summary.effects["repro.core.mod:Store.touch"]
    kinds = {(w.attr, w.kind) for w in fn.self_writes}
    assert kinds == {
        ("plain", "assign"),
        ("counter", "aug"),
        ("items", "subscript"),
        ("gone", "del"),
        ("bag", "call"),
    }


def test_init_writes_marked_and_cache_calls_are_boundary():
    summary = _summary(
        """
        class Estimator:
            def __init__(self):
                self.model = None

            def lookup(self, key):
                self._cost_cache.put(key, 1.0)
                return self._cost_cache.get(key)
        """
    )
    assert summary.effects["repro.core.mod:Estimator.__init__"].is_init
    lookup = summary.effects["repro.core.mod:Estimator.lookup"]
    # Cache maintenance is a boundary: recorded as 'cache' calls,
    # never as writes on the owning object.
    assert not lookup.self_writes
    assert {c.kind for c in lookup.calls} == {"cache"}


def test_rng_draws_and_invalidate_calls():
    summary = _summary(
        """
        import random

        class Picker:
            def __init__(self, seed: int):
                self.rng = random.Random(seed)

            def pick(self, items):
                self.estimator.clear_cache()
                return self.rng.choice(items)
        """
    )
    fn = summary.effects["repro.core.mod:Picker.pick"]
    assert len(fn.rng_draws) == 1
    assert [name for name, _line in fn.invalidate_calls] == [
        "clear_cache"
    ]


def test_pool_submit_and_parallel_safe_probe():
    summary = _summary(
        """
        from concurrent.futures import ProcessPoolExecutor

        def job(payload):
            return payload

        def fan_out(backend, items):
            if not getattr(backend, "parallel_safe", False):
                return [job(i) for i in items]
            pool = ProcessPoolExecutor(initializer=job)
            return [pool.submit(job, i).result() for i in items]
        """
    )
    fn = summary.effects["repro.core.mod:fan_out"]
    assert fn.reads_parallel_safe
    assert len(fn.constructs_pool) == 1
    targets = {t for t, _line in fn.pool_submits}
    # The submit target is an entry point; the initializer is marked
    # so reachability never treats it as one.
    assert "repro.core.mod:job" in targets
    assert "repro.core.mod:job#initializer" in targets


def test_summary_round_trips_through_json():
    summary = _summary(
        """
        class Store:
            def touch(self):
                self.plain = 1
                self.bag.append(3)

        def top(store: Store):
            store.touch()
        """
    )
    encoded = json.dumps(summary.to_dict(), sort_keys=True)
    clone = FileSummary.from_dict(json.loads(encoded))
    assert clone.to_dict() == summary.to_dict()


def test_walk_reaches_methods_through_typed_attr_chain():
    sources = {
        "src/repro/core/a.py": """
        class Inner:
            def poke(self):
                self.state = 1
        """,
        "src/repro/core/b.py": """
        from repro.core.a import Inner

        class Outer:
            def __init__(self):
                self.inner = Inner()

        def drive(outer: Outer):
            outer.inner.poke()
        """,
    }
    summaries = [
        extract_file_summary(path, ast.parse(textwrap.dedent(src)))
        for path, src in sources.items()
    ]
    graph = ProjectGraph([s.symbols for s in summaries])
    effects = EffectIndex(graph, summaries)
    reached, _protocol = effects.walk_from("repro.core.b:drive")
    assert "repro.core.a:Inner.poke" in {
        r.effects.qualname for r in reached
    }


# ---------------------------------------------------------------------------
# Persistent cache
# ---------------------------------------------------------------------------

_BAD_TREE = """
import random

class Store:
    # cache-keys: fields[_entries] invalidator[_touch]
    def __init__(self):
        self._entries = {}
        self._version = 0

    def _touch(self):
        self._version += 1

    def put(self, key, value):
        self._entries[key] = value
"""


def _project(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "store.py").write_text(textwrap.dedent(_BAD_TREE))
    return tmp_path


def _lint(tmp_path, use_cache):
    return analyze_paths(
        [tmp_path / "src"],
        project_root=tmp_path,
        scope="project",
        use_cache=use_cache,
    )


def test_cold_and_warm_cache_report_identically(tmp_path):
    root = _project(tmp_path)
    cold = _lint(root, use_cache=True)
    cache_file = root / ".lint-cache" / "effects.json"
    assert cache_file.exists()
    assert [v.rule for v in cold] == ["cache-invalidation"]
    warm = _lint(root, use_cache=True)
    assert warm == cold


def test_no_cache_mode_neither_reads_nor_writes(tmp_path):
    root = _project(tmp_path)
    findings = _lint(root, use_cache=False)
    assert [v.rule for v in findings] == ["cache-invalidation"]
    assert not (root / ".lint-cache").exists()


def test_stale_and_corrupt_cache_entries_are_ignored(tmp_path):
    root = _project(tmp_path)
    baseline = _lint(root, use_cache=True)
    cache_file = root / ".lint-cache" / "effects.json"

    # Corrupt JSON: the run recovers and rewrites the cache.
    cache_file.write_text("{ not json")
    assert _lint(root, use_cache=True) == baseline

    # Wrong analyzer version: discarded wholesale.
    payload = json.loads(cache_file.read_text())
    payload["version"] = ANALYZER_VERSION + 1
    cache_file.write_text(json.dumps(payload))
    assert _lint(root, use_cache=True) == baseline

    # Stale hash (file changed since the entry was written): the
    # entry is re-extracted, so edits are always visible.
    store = root / "src" / "repro" / "core" / "store.py"
    store.write_text(
        textwrap.dedent(_BAD_TREE).replace(
            "self._entries[key] = value",
            "self._entries[key] = value\n        self._touch()",
        )
    )
    assert _lint(root, use_cache=True) == []
