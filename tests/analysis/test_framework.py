"""Framework behavior: suppressions, baseline, fingerprints, parallel
runs, and checker selection."""

import textwrap

import pytest

from repro.analysis import analyze_paths, analyze_snippet
from repro.analysis.baseline import load_baseline, write_baseline

_BAD = """
import random

def pick(items):
    return random.choice(items)
"""


def _snippet(source, path="src/repro/core/mod.py"):
    return analyze_snippet(textwrap.dedent(source), path)


def test_inline_suppression_with_reason():
    suppressed = """
    import random

    def pick(items):
        # lint: ignore[unseeded-random] -- test fixture needs raw draws
        return random.choice(items)
    """
    assert not [
        v for v in _snippet(suppressed) if v.rule == "unseeded-random"
    ]


def test_suppression_without_reason_is_itself_a_violation():
    reasonless = """
    import random

    def pick(items):
        # lint: ignore[unseeded-random]
        return random.choice(items)
    """
    found = _snippet(reasonless)
    assert [v for v in found if v.rule == "suppression"]


def test_suppression_only_covers_adjacent_line():
    far_away = """
    # lint: ignore[unseeded-random] -- too far from the call to apply
    import random


    def pick(items):
        return random.choice(items)
    """
    assert [v for v in _snippet(far_away) if v.rule == "unseeded-random"]


def test_fingerprint_stable_across_line_shifts():
    shifted = "\n\n\n" + textwrap.dedent(_BAD)
    original = {v.fingerprint for v in _snippet(_BAD)}
    moved = {v.fingerprint for v in _snippet(shifted)}
    assert original == moved


def test_baseline_round_trip(tmp_path):
    violations = _snippet(_BAD)
    assert violations
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, violations)
    baseline = load_baseline(baseline_path)
    assert baseline.filter_new(violations) == []


def test_missing_baseline_is_empty(tmp_path):
    baseline = load_baseline(tmp_path / "nope.json")
    assert baseline.filter_new(_snippet(_BAD))


def test_unknown_checker_name_rejected(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    with pytest.raises(KeyError):
        analyze_paths([target], select=["no-such-checker"])


def test_parallel_and_serial_agree(tmp_path):
    # Enough files to cross the process-pool threshold.
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    for i in range(20):
        body = "import random\n\ndef f(x):\n    return random.choice(x)\n"
        (pkg / f"mod_{i:02d}.py").write_text(body)
    serial = analyze_paths([pkg], project_root=tmp_path, jobs=1)
    parallel = analyze_paths([pkg], project_root=tmp_path, jobs=2)
    assert serial == parallel
    assert len(serial) == 20


def test_syntax_error_reported_not_raised(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    found = analyze_paths([target], project_root=tmp_path)
    assert [v for v in found if v.rule == "parse"]
