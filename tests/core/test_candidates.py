"""Candidate index generation tests (paper Section IV-A)."""

import pytest

from repro.core.candidates import CandidateGenerator
from repro.core.templates import TemplateStore
from repro.engine.index import IndexDef
from repro.sql import parse


@pytest.fixture
def generator(people_db):
    return CandidateGenerator(people_db)


@pytest.fixture
def join_generator(join_db):
    return CandidateGenerator(join_db)


def defs(generator, sql):
    return generator.for_statement(parse(sql))


class TestFilterCandidates:
    def test_single_equality(self, generator):
        result = defs(generator, "SELECT id FROM people WHERE community = 1")
        assert IndexDef(table="people", columns=("community",)) in result

    def test_conjunction_makes_composite(self, generator):
        result = defs(
            generator,
            "SELECT id FROM people WHERE community = 1 AND status = 'x'",
        )
        # community (20 distinct) before status (3 distinct).
        assert IndexDef(
            table="people", columns=("community", "status")
        ) in result

    def test_eq_columns_ordered_by_distinct_count(self, generator):
        result = defs(
            generator,
            "SELECT id FROM people WHERE status = 'x' AND community = 1",
        )
        assert result[0].columns == ("community", "status")

    def test_range_column_goes_last(self, generator):
        result = defs(
            generator,
            "SELECT id FROM people "
            "WHERE temperature > 40.9 AND community = 1",
        )
        assert result[0].columns == ("community", "temperature")

    def test_unselective_predicate_gated(self, generator):
        # temperature > 36.1 matches nearly everything: no candidate.
        result = defs(
            generator, "SELECT id FROM people WHERE temperature > 36.1"
        )
        assert result == []

    def test_selective_range_survives_gate(self, generator):
        result = defs(
            generator, "SELECT id FROM people WHERE temperature > 40.8"
        )
        assert IndexDef(table="people", columns=("temperature",)) in result

    def test_paper_example6_same_candidates_for_both_forms(self, generator):
        form1 = defs(
            generator,
            "SELECT id FROM people WHERE "
            "(community = 1 AND status = 'x') "
            "OR (community = 1 AND temperature > 40.9)",
        )
        form2 = defs(
            generator,
            "SELECT id FROM people WHERE community = 1 "
            "AND (status = 'x' OR temperature > 40.9)",
        )
        assert set(form1) == set(form2)

    def test_or_produces_separate_candidates(self, generator):
        result = defs(
            generator,
            "SELECT id FROM people "
            "WHERE community = 1 OR temperature > 40.9",
        )
        tables = {d.columns for d in result}
        assert ("community",) in tables
        assert ("temperature",) in tables


class TestJoinCandidates:
    def test_join_generates_fk_candidates(self, join_generator):
        result = defs(
            join_generator,
            "SELECT c.name FROM customers c "
            "JOIN orders o ON c.cid = o.cid WHERE c.region = 1",
        )
        assert IndexDef(table="orders", columns=("cid",)) in result
        assert IndexDef(table="customers", columns=("cid",)) in result


class TestGroupOrderCandidates:
    def test_group_by_candidate(self, join_generator):
        result = defs(
            join_generator,
            "SELECT region, count(*) FROM customers GROUP BY region",
        )
        assert IndexDef(table="customers", columns=("region",)) in result

    def test_group_by_unique_column_skipped(self, join_generator):
        result = defs(
            join_generator,
            "SELECT cid, count(*) FROM customers GROUP BY cid",
        )
        assert IndexDef(table="customers", columns=("cid",)) not in result

    def test_order_by_candidate(self, join_generator):
        result = defs(
            join_generator,
            "SELECT amount FROM orders ORDER BY amount",
        )
        assert IndexDef(table="orders", columns=("amount",)) in result


class TestWriteStatements:
    def test_update_where_candidates(self, generator):
        result = defs(
            generator,
            "UPDATE people SET temperature = 40.0 WHERE community = 3",
        )
        assert IndexDef(table="people", columns=("community",)) in result

    def test_delete_where_candidates(self, generator):
        result = defs(generator, "DELETE FROM people WHERE community = 3")
        assert IndexDef(table="people", columns=("community",)) in result

    def test_insert_no_candidates(self, generator):
        result = defs(
            generator,
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (1, 'x', 1, 1.0, 'y')",
        )
        assert result == []


class TestSubqueries:
    def test_derived_table_candidates(self, join_generator):
        result = defs(
            join_generator,
            "SELECT s.amount FROM "
            "(SELECT cid, amount FROM orders WHERE status = 'void') AS s, "
            "customers c WHERE c.cid = s.cid",
        )
        assert IndexDef(table="orders", columns=("status",)) in result

    def test_in_subquery_candidates(self, join_generator):
        result = defs(
            join_generator,
            "SELECT name FROM customers WHERE cid IN "
            "(SELECT cid FROM orders WHERE amount > 999)",
        )
        assert IndexDef(table="orders", columns=("amount",)) in result


class TestMergeAndFilter:
    def make_templates(self, store_queries):
        store = TemplateStore()
        for sql in store_queries:
            store.observe(sql)
        return store.templates()

    def test_prefix_merge_absorbs_narrow(self, generator):
        templates = self.make_templates(
            [
                "SELECT id FROM people WHERE community = 1",
                "SELECT id FROM people WHERE community = 1 AND status = 'x'",
            ]
        )
        candidates = generator.generate(templates)
        columns = [c.definition.columns for c in candidates]
        assert ("community", "status") in columns
        assert ("community",) not in columns

    def test_merge_accumulates_support(self, generator):
        templates = self.make_templates(
            [
                "SELECT id FROM people WHERE community = 1",
                "SELECT id FROM people WHERE community = 1",
                "SELECT id FROM people WHERE community = 2",
            ]
        )
        candidates = generator.generate(templates)
        assert candidates[0].support >= 3.0

    def test_existing_indexes_excluded(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("community", "status"))
        )
        generator = CandidateGenerator(people_db)
        templates = self.make_templates(
            ["SELECT id FROM people WHERE community = 1"]
        )
        # (community) is a prefix of the built (community, status).
        assert generator.generate(templates) == []

    def test_duplicate_candidates_merged(self, generator):
        templates = self.make_templates(
            [
                "SELECT id FROM people WHERE community = 1",
                "DELETE FROM people WHERE community = 5",
            ]
        )
        candidates = generator.generate(templates)
        keys = [c.definition.key for c in candidates]
        assert len(keys) == len(set(keys))

    def test_sorted_by_support(self, generator):
        templates = self.make_templates(
            [
                "SELECT id FROM people WHERE community = 1",
                "SELECT id FROM people WHERE community = 2",
                "SELECT id FROM people WHERE temperature > 40.9",
            ]
        )
        candidates = generator.generate(templates)
        supports = [c.support for c in candidates]
        assert supports == sorted(supports, reverse=True)


class TestColumnCap:
    def test_max_columns_respected(self, people_db):
        generator = CandidateGenerator(people_db, max_columns=2)
        result = defs(
            generator,
            "SELECT id FROM people WHERE community = 1 AND status = 'x' "
            "AND name = 'person_1' AND temperature > 40.9",
        )
        assert all(len(d.columns) <= 2 for d in result)
