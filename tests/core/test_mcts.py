"""MCTS index update tests: policy tree, UCB, budget, incrementality."""

import math

import pytest

from repro.core.estimator import BenefitEstimator
from repro.core.mcts import Action, MctsIndexSelector, PolicyNode, PolicyTree
from repro.core.templates import TemplateStore
from repro.engine.index import IndexDef


def make_templates(queries):
    store = TemplateStore()
    for sql in queries:
        store.observe(sql)
    return store.templates()


@pytest.fixture
def selector(people_db):
    return MctsIndexSelector(
        BenefitEstimator(people_db), iterations=50, rollouts=3, seed=3
    )


READ_QUERIES = [
    "SELECT id FROM people WHERE community = 1 AND status = 'x'",
    "SELECT count(*) FROM people WHERE temperature >= 39.5",
] * 10


class TestPolicyTree:
    def test_reroot_creates_and_reuses(self):
        tree = PolicyTree()
        config = frozenset({("t", ("a",))})
        first = tree.reroot(config)
        second = tree.reroot(config)
        assert first is second

    def test_child_add_and_remove(self):
        tree = PolicyTree()
        root = tree.reroot(frozenset())
        definition = IndexDef(table="t", columns=("a",))
        child = tree.child(root, Action(kind="add", index=definition))
        assert definition.key in child.config
        back = tree.child(child, Action(kind="remove", index=definition))
        assert back.config == root.config

    def test_children_not_duplicated(self):
        tree = PolicyTree()
        root = tree.reroot(frozenset())
        action = Action(kind="add", index=IndexDef(table="t", columns=("a",)))
        tree.child(root, action)
        tree.child(root, action)
        assert len(root.children) == 1

    def test_epoch_invalidates_benefits(self):
        node = PolicyNode(frozenset())
        node.own_benefit = 5.0
        node.epoch = 0
        tree = PolicyTree()
        tree.new_epoch()
        assert node.epoch != tree.epoch


class TestSearch:
    def test_finds_beneficial_index(self, people_db, selector):
        templates = make_templates(READ_QUERIES)
        result = selector.search(
            existing=people_db.index_defs(),
            candidates=[
                IndexDef(table="people", columns=("community", "status")),
                IndexDef(table="people", columns=("temperature",)),
            ],
            templates=templates,
            protected=people_db.index_defs(),
        )
        added = {d.columns for d in result.additions}
        assert ("community", "status") in added
        assert ("temperature",) in added
        assert result.best_benefit > 0

    def test_useless_candidate_not_added(self, people_db, selector):
        templates = make_templates(READ_QUERIES)
        result = selector.search(
            existing=people_db.index_defs(),
            candidates=[IndexDef(table="people", columns=("name",))],
            templates=templates,
            protected=people_db.index_defs(),
        )
        assert result.additions == []

    def test_removes_write_penalised_index(self, people_db, selector):
        bad = IndexDef(table="people", columns=("temperature",))
        people_db.create_index(bad)
        templates = make_templates(
            [
                "INSERT INTO people (id, name, community, temperature, "
                f"status) VALUES ({i}, 'x', 1, 37.0, 'y')"
                for i in range(40)
            ]
        )
        result = selector.search(
            existing=people_db.index_defs(),
            candidates=[],
            templates=templates,
            protected=[d for d in people_db.index_defs() if d.unique],
        )
        assert bad in result.removals

    def test_protected_indexes_never_removed(self, people_db, selector):
        templates = make_templates(
            [
                "INSERT INTO people (id, name, community, temperature, "
                f"status) VALUES ({i}, 'x', 1, 37.0, 'y')"
                for i in range(40)
            ]
        )
        protected = people_db.index_defs()
        result = selector.search(
            existing=protected,
            candidates=[],
            templates=templates,
            protected=protected,
        )
        assert result.removals == []

    def test_budget_respected(self, people_db, selector):
        templates = make_templates(READ_QUERIES)
        candidates = [
            IndexDef(table="people", columns=("community", "status")),
            IndexDef(table="people", columns=("temperature",)),
        ]
        # Budget fits only (roughly) one index.
        one_size = people_db.index_size_bytes(candidates[0])
        result = selector.search(
            existing=people_db.index_defs(),
            candidates=candidates,
            templates=templates,
            budget_bytes=one_size + 1024,
            protected=people_db.index_defs(),
        )
        total = sum(
            people_db.index_size_bytes(d) for d in result.additions
        )
        assert total <= one_size + 1024
        assert len(result.additions) <= 1

    def test_zero_budget_adds_nothing(self, people_db, selector):
        templates = make_templates(READ_QUERIES)
        result = selector.search(
            existing=people_db.index_defs(),
            candidates=[
                IndexDef(table="people", columns=("community", "status"))
            ],
            templates=templates,
            budget_bytes=0,
            protected=people_db.index_defs(),
        )
        assert result.additions == []

    def test_result_accounting(self, people_db, selector):
        templates = make_templates(READ_QUERIES)
        result = selector.search(
            existing=people_db.index_defs(),
            candidates=[
                IndexDef(table="people", columns=("community", "status"))
            ],
            templates=templates,
            protected=people_db.index_defs(),
        )
        assert result.iterations >= 1
        assert result.evaluations >= 1
        assert result.baseline_cost > 0
        assert 0 <= result.relative_improvement <= 1

    def test_deterministic_given_seed(self, people_db):
        def run():
            selector = MctsIndexSelector(
                BenefitEstimator(people_db),
                iterations=30,
                rollouts=2,
                seed=11,
            )
            result = selector.search(
                existing=people_db.index_defs(),
                candidates=[
                    IndexDef(table="people", columns=("community", "status")),
                    IndexDef(table="people", columns=("temperature",)),
                    IndexDef(table="people", columns=("name",)),
                ],
                templates=make_templates(READ_QUERIES),
                protected=people_db.index_defs(),
            )
            return sorted(d.key for d in result.best_config)

        assert run() == run()


class TestIncrementalReuse:
    def test_tree_persists_across_rounds(self, people_db, selector):
        templates = make_templates(READ_QUERIES)
        existing = people_db.index_defs()
        candidates = [
            IndexDef(table="people", columns=("community", "status"))
        ]
        selector.search(
            existing=existing, candidates=candidates,
            templates=templates, protected=existing,
        )
        nodes_after_first = selector.tree.node_count()
        selector.search(
            existing=existing, candidates=candidates,
            templates=templates, protected=existing,
        )
        assert selector.tree.node_count() >= nodes_after_first

    def test_reroot_at_new_config(self, people_db, selector):
        templates = make_templates(READ_QUERIES)
        existing = people_db.index_defs()
        new_index = IndexDef(table="people", columns=("community", "status"))
        selector.search(
            existing=existing, candidates=[new_index],
            templates=templates, protected=existing,
        )
        # Second round pretends the index was applied.
        selector.search(
            existing=existing + [new_index], candidates=[],
            templates=templates, protected=existing,
        )
        assert selector.tree.root.config == frozenset(
            d.key for d in existing + [new_index]
        )

    def test_epoch_bumped_each_round(self, people_db, selector):
        templates = make_templates(READ_QUERIES)
        existing = people_db.index_defs()
        first_epoch = selector.tree.epoch
        selector.search(
            existing=existing, candidates=[], templates=templates,
            protected=existing,
        )
        assert selector.tree.epoch == first_epoch + 1


class TestUtility:
    def test_unvisited_node_is_infinite(self, people_db, selector):
        selector._baseline_cost = 100.0
        node = PolicyNode(frozenset())
        assert selector._utility(node, total_visits=10) == math.inf

    def test_exploration_decays_with_visits(self, people_db, selector):
        selector._baseline_cost = 100.0
        rarely = PolicyNode(frozenset())
        rarely.visits = 1
        rarely.subtree_best = 10.0
        often = PolicyNode(frozenset())
        often.visits = 50
        often.subtree_best = 10.0
        assert selector._utility(rarely, 100) > selector._utility(often, 100)

    def test_benefit_increases_utility(self, people_db, selector):
        selector._baseline_cost = 100.0
        low = PolicyNode(frozenset())
        low.visits = 10
        low.subtree_best = 1.0
        high = PolicyNode(frozenset())
        high.visits = 10
        high.subtree_best = 50.0
        assert selector._utility(high, 100) > selector._utility(low, 100)
