"""The regret-bounded safety layer: ledger, gate, and persistence.

Unit coverage for :mod:`repro.core.safety` plus the two resilience
scenarios the tentpole demands end to end:

* an advisor killed *inside* a post-apply observation window must,
  after restore, still auto-revert the regressing index (the window
  and the ledger claim both live in ``safety.json``);
* a fault during the revert's own DDL must not strand a half-reverted
  catalog — the changeset rolls back and the window is re-armed so
  the revert retries on the next pass.
"""

from repro.core.advisor import AutoIndexAdvisor
from repro.core.safety import (
    BenefitLedger,
    Explanation,
    ReviewQueue,
    SafetyController,
    ShadowReport,
)
from repro.engine.faults import FaultPlan
from repro.engine.index import IndexDef

from .test_chaos import READS, UPDATES, attach

IDX_A = IndexDef(table="people", columns=("community",))
IDX_B = IndexDef(table="people", columns=("status",))
IDX_OTHER = IndexDef(table="orders", columns=("amount",))


class TestBenefitLedger:
    def test_claim_lifecycle_and_regret(self):
        ledger = BenefitLedger()
        ledger.record_prediction(IDX_A, 100.0)
        assert ledger.has_pending(IDX_A)
        assert ledger.pending_exposure() == 100.0
        regret = ledger.record_observation(IDX_A, 30.0)
        assert regret == 70.0
        assert ledger.cumulative_regret == 70.0
        assert not ledger.has_pending(IDX_A)
        assert ledger.pending_exposure() == 0.0

    def test_overdelivery_earns_no_credit(self):
        ledger = BenefitLedger()
        ledger.record_prediction(IDX_A, 10.0)
        assert ledger.record_observation(IDX_A, 50.0) == 0.0
        # ...but the error history still remembers the miss.
        assert ledger.error_for(IDX_A) == 40.0

    def test_drop_pending_withdraws_the_claim(self):
        ledger = BenefitLedger()
        ledger.record_prediction(IDX_A, 42.0)
        ledger.drop_pending(IDX_A)
        assert not ledger.has_pending(IDX_A)
        assert ledger.cumulative_regret == 0.0

    def test_error_fallback_ladder(self):
        ledger = BenefitLedger()
        # Fresh ledger: no history at any level -> never gates.
        assert ledger.error_for(IDX_A) is None
        ledger.record_prediction(IDX_B, 20.0)
        ledger.record_observation(IDX_B, 10.0)  # error 10 on people
        # IDX_A has no arm history -> same-table pool (people).
        assert ledger.error_for(IDX_A) == 10.0
        # Other table -> global pool.
        assert ledger.error_for(IDX_OTHER) == 10.0
        # The exact arm's own history wins once it exists.
        ledger.record_prediction(IDX_A, 5.0)
        ledger.record_observation(IDX_A, 3.0)
        assert ledger.error_for(IDX_A) == 2.0

    def test_round_trip_preserves_accounting(self):
        ledger = BenefitLedger()
        ledger.record_prediction(IDX_A, 100.0)
        ledger.record_observation(IDX_A, 30.0)
        ledger.record_prediction(IDX_B, 7.5)
        restored = BenefitLedger.from_dict(ledger.to_dict())
        assert restored.cumulative_regret == 70.0
        assert restored.has_pending(IDX_B)
        assert restored.pending_prediction(IDX_B) == 7.5
        assert restored.error_for(IDX_A) == 70.0


class TestReviewQueue:
    def _submit(self, queue, additions=(IDX_A,), reason="r"):
        return queue.submit(
            additions=list(additions),
            removals=[],
            predicted_benefit=5.0,
            shadow_margin=4.0,
            reason=reason,
            explanation=Explanation(),
        )

    def test_identical_pending_changes_dedup(self):
        queue = ReviewQueue()
        first = self._submit(queue)
        again = self._submit(queue, reason="new reason")
        assert again.rec_id == first.rec_id
        assert first.reason == "new reason"
        assert len(queue.all_items()) == 1

    def test_resolved_change_can_be_requeued(self):
        queue = ReviewQueue()
        first = self._submit(queue)
        queue.resolve(first.rec_id, accept=False, note="no")
        second = self._submit(queue)
        assert second.rec_id != first.rec_id

    def test_double_resolve_raises(self):
        import pytest

        queue = ReviewQueue()
        rec = self._submit(queue)
        queue.resolve(rec.rec_id, accept=True)
        with pytest.raises(ValueError):
            queue.resolve(rec.rec_id, accept=False)

    def test_round_trip_keeps_ids_monotonic(self):
        queue = ReviewQueue()
        rec = self._submit(queue)
        queue.resolve(rec.rec_id, accept=False)
        restored = ReviewQueue.from_dict(queue.to_dict())
        fresh = self._submit(restored)
        assert fresh.rec_id > rec.rec_id
        assert restored.unconsumed_verdicts()[0].rec_id == rec.rec_id


def shadow(margin=10.0, benefit=10.0, arms=((IDX_A, 10.0),)):
    return ShadowReport(
        current_cost=100.0,
        candidate_cost=100.0 - margin,
        model_current=100.0,
        model_candidate=100.0 - benefit,
        per_arm=list(arms),
    )


class TestSafetyController:
    def test_auto_without_bound_never_gates(self):
        controller = SafetyController(apply_mode="auto")
        assert not controller.gating_active()
        assert controller.decide(shadow()).action == "apply"

    def test_review_mode_queues_everything(self):
        controller = SafetyController(apply_mode="review")
        decision = controller.decide(shadow())
        assert decision.action == "queue"
        assert "review" in decision.reason

    def test_shadow_mode_queues_everything(self):
        controller = SafetyController(apply_mode="shadow")
        assert controller.shadow_only()
        assert controller.decide(shadow()).action == "queue"

    def test_unavailable_shadow_queues_under_a_bound(self):
        controller = SafetyController(regret_bound=1000.0)
        decision = controller.decide(
            ShadowReport(unavailable=True, note="model down")
        )
        assert decision.action == "queue"
        assert "unavailable" in decision.reason

    def test_fresh_ledger_applies_within_budget(self):
        controller = SafetyController(regret_bound=1000.0)
        assert controller.decide(shadow()).action == "apply"

    def test_budget_check_counts_settled_pending_and_charge(self):
        controller = SafetyController(regret_bound=100.0)
        controller.ledger.record_prediction(IDX_B, 60.0)
        controller.ledger.record_observation(IDX_B, 0.0)  # regret 60
        # 60 settled + 50 new claim > 100 -> queue.
        decision = controller.decide(
            shadow(benefit=50.0, arms=((IDX_A, 50.0),))
        )
        assert decision.action == "queue"
        assert "regret budget" in decision.reason

    def test_margin_below_historical_error_queues(self):
        controller = SafetyController(regret_bound=10_000.0)
        controller.ledger.record_prediction(IDX_A, 100.0)
        controller.ledger.record_observation(IDX_A, 10.0)  # error 90
        decision = controller.decide(
            shadow(margin=5.0, benefit=5.0, arms=((IDX_A, 5.0),))
        )
        assert decision.action == "queue"
        assert "shadow margin" in decision.reason

    def test_exhausted_budget_degrades_to_shadow_only(self):
        controller = SafetyController(regret_bound=50.0)
        assert not controller.shadow_only()
        controller.ledger.record_prediction(IDX_A, 80.0)
        # Pending exposure alone exceeds the bound.
        assert controller.shadow_only()
        controller.ledger.record_observation(IDX_A, 80.0)  # no regret
        assert not controller.shadow_only()

    def test_restore_adopts_state_but_keeps_mode_knobs(self):
        old = SafetyController(apply_mode="review")
        old.ledger.record_prediction(IDX_A, 9.0)
        old.gated_rounds = 3
        new = SafetyController(apply_mode="auto", regret_bound=7.0)
        new.restore(old.to_dict())
        assert new.ledger.has_pending(IDX_A)
        assert new.gated_rounds == 3
        assert new.apply_mode == "auto"
        assert new.regret_bound == 7.0


class TestWindowSurvivesRestart:
    def test_killed_mid_window_still_reverts_after_restore(
        self, people_db, tmp_path
    ):
        """Satellite: the post-apply observation window must survive a
        crash. Apply an index, checkpoint inside its window, restore
        into a fresh advisor, turn the workload write-heavy — the
        regressing index must still be auto-reverted and its ledger
        claim settled."""
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40, seed=3)
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        first = advisor.tune()
        target = IndexDef(
            table="people", columns=("community", "status")
        )
        assert target.key in {d.key for d in first.created}
        watched = {d.key for d in advisor.diagnosis.watched_indexes()}
        assert target.key in watched
        assert advisor.safety.ledger.has_pending(target)
        advisor.save_state(tmp_path)

        # The process dies here; a fresh advisor restores the window.
        fresh = AutoIndexAdvisor(people_db, mcts_iterations=40, seed=3)
        report = fresh.load_state(tmp_path)
        assert report.loaded("safety.json")
        assert {
            d.key for d in fresh.diagnosis.watched_indexes()
        } == watched
        assert fresh.safety.ledger.has_pending(target)

        for sql in UPDATES:
            people_db.execute(sql)
            fresh.observe(sql)
        second = fresh.tune()
        assert target.key in {d.key for d in second.dropped}
        assert not people_db.has_index(target)
        # The window's close settled the restored claim.
        assert not fresh.safety.ledger.has_pending(target)
        assert fresh.safety.ledger.observations >= 1


class TestRevertUnderFaults:
    def test_fault_mid_revert_rolls_back_and_rewatches(self, people_db):
        """Satellite: a fault in the revert's own DDL must not strand
        a half-reverted catalog. With two regressed indexes and the
        fault on the second DROP, the first must be re-created."""
        from repro.core.changeset import IndexChangeSet
        from repro.core.pipeline import ObserveStage

        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40, seed=3)
        IndexChangeSet(people_db).apply(creates=[IDX_A, IDX_B])
        ctx = advisor.make_context()
        # Force the pass to see both as regressed, windows closed.
        ctx.diagnosis.check_applied = (
            lambda consume=True: [IDX_A, IDX_B]
        )
        ctx.diagnosis.pop_closed = lambda: []
        attach(
            people_db,
            FaultPlan(seed=0).add("index.build", schedule=[2]),
        )
        ObserveStage().run(ctx)  # must not raise
        assert "auto-revert failed" in ctx.report.degraded
        # IDX_A's completed DROP was rolled back: nothing half-done.
        assert people_db.has_index(IDX_A)
        assert people_db.has_index(IDX_B)
        assert ctx.report.rolled_back == 1
        # Both are watched again so the revert retries next pass.
        assert {IDX_A.key, IDX_B.key} <= {
            d.key for d in advisor.diagnosis.watched_indexes()
        }

    def test_revert_retries_once_the_fault_clears(self, people_db):
        """End to end: a fully faulted round leaves the regressing
        index in place but re-armed; the next round reverts it."""
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40, seed=3)
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        advisor.tune()
        target = IndexDef(
            table="people", columns=("community", "status")
        )
        assert people_db.has_index(target)

        for sql in UPDATES:
            people_db.execute(sql)
            advisor.observe(sql)
        attach(
            people_db,
            FaultPlan(seed=0).add("index.build", probability=1.0),
        )
        report = advisor.tune()  # must not raise
        assert report.degraded
        assert target.key not in {d.key for d in report.dropped}
        assert people_db.has_index(target)
        assert target.key in {
            d.key for d in advisor.diagnosis.watched_indexes()
        }

        # Fault cleared: the retried revert completes next round.
        people_db.faults = None
        people_db.planner.faults = None
        for sql in UPDATES:
            people_db.execute(sql)
            advisor.observe(sql)
        retry = advisor.tune()
        assert target.key in {d.key for d in retry.dropped}
        assert not people_db.has_index(target)
