"""Index diagnosis tests."""

import pytest

from repro.core.candidates import CandidateGenerator
from repro.core.diagnosis import IndexDiagnosis, IndexProblemReport
from repro.core.templates import TemplateStore
from repro.engine.index import IndexDef


def make_diagnosis(db, min_observations=1):
    store = TemplateStore()
    return (
        IndexDiagnosis(
            db, store, CandidateGenerator(db),
            min_observations=min_observations,
        ),
        store,
    )


class TestClassification:
    def test_rarely_used_detected(self, people_db):
        unused = IndexDef(table="people", columns=("name",))
        people_db.create_index(unused)
        diagnosis, _store = make_diagnosis(people_db)
        for _ in range(5):
            people_db.execute("SELECT id FROM people WHERE id = 1")
        report = diagnosis.diagnose(
            protected=[d for d in people_db.index_defs() if d.unique]
        )
        assert unused in report.rarely_used

    def test_negative_index_detected(self, people_db):
        hot_write = IndexDef(table="people", columns=("temperature",))
        people_db.create_index(hot_write)
        diagnosis, _store = make_diagnosis(people_db)
        # One lookup, many maintenance hits.
        people_db.execute(
            "SELECT count(*) FROM people WHERE temperature >= 41.0"
        )
        for i in range(40):
            people_db.execute(
                f"UPDATE people SET temperature = 39.0 WHERE id = {i}"
            )
        report = diagnosis.diagnose(
            protected=[d for d in people_db.index_defs() if d.unique]
        )
        assert hot_write in report.negative

    def test_missing_beneficial_from_templates(self, people_db):
        diagnosis, store = make_diagnosis(people_db)
        for i in range(10):
            sql = f"SELECT id FROM people WHERE community = {i % 5} AND status = 'x'"
            people_db.execute(sql)
            store.observe(sql)
        report = diagnosis.diagnose()
        assert any(
            d.columns == ("community", "status")
            for d in report.missing_beneficial
        )

    def test_protected_not_reported(self, people_db):
        diagnosis, _store = make_diagnosis(people_db)
        for _ in range(5):
            people_db.execute("SELECT count(*) FROM people")
        report = diagnosis.diagnose(protected=people_db.index_defs())
        assert report.rarely_used == []

    def test_quiet_until_enough_observations(self, people_db):
        people_db.create_index(IndexDef(table="people", columns=("name",)))
        diagnosis, _store = make_diagnosis(people_db, min_observations=100)
        people_db.execute("SELECT id FROM people WHERE id = 1")
        report = diagnosis.diagnose()
        assert report.considered == 0


class TestTrigger:
    def test_should_tune_on_high_ratio(self):
        report = IndexProblemReport(
            rarely_used=[IndexDef(table="t", columns=("a",))],
            considered=2,
        )
        assert report.should_tune(threshold=0.1)

    def test_no_tune_when_clean(self):
        report = IndexProblemReport(considered=10)
        assert not report.should_tune()

    def test_regression_forces_tune(self):
        report = IndexProblemReport(considered=10, regression=True)
        assert report.should_tune()

    def test_problem_ratio_counts_missing(self):
        report = IndexProblemReport(
            missing_beneficial=[IndexDef(table="t", columns=("a",))],
            considered=0,
        )
        assert report.problem_ratio == 1.0
