"""Cost feature computation tests (paper Section V features)."""

import pytest

from repro.core.features import (
    CostFeatures,
    compute_features,
    referenced_tables,
)
from repro.engine.index import IndexDef
from repro.sql import parse


class TestReadFeatures:
    def test_select_has_no_maintenance(self, people_db):
        features = compute_features(
            people_db, parse("SELECT id FROM people WHERE community = 1")
        )
        assert features.io_cost == 0.0
        assert features.cpu_cost == 0.0
        assert not features.is_write
        assert features.data_cost > 0

    def test_index_lowers_data_cost(self, people_db):
        stmt = parse(
            "SELECT id FROM people WHERE community = 1 AND status = 'x'"
        )
        pk = people_db.index_defs()
        bare = compute_features(people_db, stmt, pk)
        indexed = compute_features(
            people_db,
            stmt,
            pk + [IndexDef(table="people", columns=("community", "status"))],
        )
        assert indexed.data_cost < bare.data_cost


class TestWriteFeatures:
    def test_insert_counts_affected_indexes(self, people_db):
        stmt = parse(
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (1, 'x', 1, 1.0, 'y')"
        )
        config = people_db.index_defs() + [
            IndexDef(table="people", columns=("community",)),
            IndexDef(table="people", columns=("temperature",)),
        ]
        features = compute_features(people_db, stmt, config)
        assert features.is_write
        assert features.num_affected_indexes == 3
        assert features.io_cost > 0
        assert features.cpu_cost > 0

    def test_update_only_touched_indexes(self, people_db):
        stmt = parse("UPDATE people SET temperature = 40.0 WHERE id = 1")
        config = people_db.index_defs() + [
            IndexDef(table="people", columns=("community",)),
            IndexDef(table="people", columns=("temperature",)),
        ]
        features = compute_features(people_db, stmt, config)
        assert features.num_affected_indexes == 1

    def test_delete_free_maintenance(self, people_db):
        stmt = parse("DELETE FROM people WHERE id = 1")
        config = people_db.index_defs() + [
            IndexDef(table="people", columns=("community",))
        ]
        features = compute_features(people_db, stmt, config)
        assert features.io_cost == 0.0
        assert features.cpu_cost == 0.0

    def test_maintenance_grows_with_config(self, people_db):
        stmt = parse(
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (1, 'x', 1, 1.0, 'y')"
        )
        small = compute_features(
            people_db, stmt,
            [IndexDef(table="people", columns=("community",))],
        )
        large = compute_features(
            people_db, stmt,
            [
                IndexDef(table="people", columns=("community",)),
                IndexDef(table="people", columns=("status",)),
                IndexDef(table="people", columns=("name", "community")),
            ],
        )
        assert large.cpu_cost > small.cpu_cost
        assert large.io_cost > small.io_cost


class TestVectorInterface:
    def test_as_array_layout(self):
        features = CostFeatures(
            data_cost=1.0, io_cost=2.0, cpu_cost=3.0,
            is_write=True, num_affected_indexes=4,
        )
        assert list(features.as_array()) == [1.0, 2.0, 3.0, 1.0, 4.0]

    def test_naive_total(self):
        features = CostFeatures(
            data_cost=1.0, io_cost=2.0, cpu_cost=3.0,
            is_write=False, num_affected_indexes=0,
        )
        assert features.naive_total == 6.0

    def test_whatif_overlay_restored(self, people_db):
        stmt = parse("SELECT id FROM people WHERE id = 1")
        compute_features(
            people_db, stmt,
            [IndexDef(table="people", columns=("community",))],
        )
        assert not people_db.catalog.whatif_active


class TestReferencedTables:
    def test_select_tables(self):
        stmt = parse("SELECT a FROM t1, t2 WHERE t1.x = t2.y")
        assert referenced_tables(stmt) == ("t1", "t2")

    def test_write_table(self):
        assert referenced_tables(parse("UPDATE t SET a = 1")) == ("t",)
        assert referenced_tables(
            parse("INSERT INTO u (a) VALUES (1)")
        ) == ("u",)

    def test_subquery_tables_included(self):
        stmt = parse(
            "SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 1)"
        )
        assert referenced_tables(stmt) == ("t", "u")
