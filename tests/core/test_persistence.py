"""Advisor/template-store persistence across restarts."""

import json

import pytest

from repro.core.advisor import AutoIndexAdvisor
from repro.core.estimator import DeepIndexEstimator
from repro.core.templates import TemplateStore


QUERIES = [
    f"SELECT id FROM people WHERE community = {i % 10} AND status = 'x'"
    for i in range(30)
] + [
    "INSERT INTO people (id, name, community, temperature, status) "
    f"VALUES ({40000 + i}, 'w', 1, 37.0, 'y')"
    for i in range(10)
]


class TestTemplateStoreRoundTrip:
    def test_to_from_dict(self):
        store = TemplateStore(capacity=100)
        for sql in QUERIES:
            store.observe(sql)
        restored = TemplateStore.from_dict(store.to_dict())
        assert len(restored) == len(store)
        for template in store.templates():
            twin = restored.get(template.fingerprint)
            assert twin is not None
            assert twin.frequency == template.frequency
            assert twin.window_frequency == template.window_frequency
            assert twin.is_write == template.is_write

    def test_restored_statements_are_parsed(self):
        store = TemplateStore()
        store.observe("SELECT id FROM people WHERE community = 1")
        restored = TemplateStore.from_dict(store.to_dict())
        template = restored.templates()[0]
        from repro.sql import ast

        assert isinstance(template.statement, ast.Select)

    def test_json_serializable(self):
        store = TemplateStore()
        for sql in QUERIES[:5]:
            store.observe(sql)
        text = json.dumps(store.to_dict())
        restored = TemplateStore.from_dict(json.loads(text))
        assert len(restored) == len(store)

    def test_restored_store_keeps_matching(self):
        store = TemplateStore()
        store.observe("SELECT id FROM people WHERE community = 1")
        restored = TemplateStore.from_dict(store.to_dict())
        template = restored.observe(
            "SELECT id FROM people WHERE community = 99"
        )
        assert template.frequency == 2.0  # matched the restored template


class TestAdvisorStateRoundTrip:
    def test_save_load_preserves_tuning_behaviour(
        self, people_db, tmp_path
    ):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40, seed=3)
        for sql in QUERIES:
            people_db.execute(sql)
            advisor.observe(sql)
            advisor.record_execution(sql, people_db.execute(sql).cost)
        advisor.train_estimator()
        advisor.save_state(tmp_path)

        # A "restarted" advisor on the same database.
        fresh = AutoIndexAdvisor(people_db, mcts_iterations=40, seed=3)
        fresh.load_state(tmp_path)
        assert len(fresh.store) == len(advisor.store)
        assert isinstance(fresh.estimator.model, DeepIndexEstimator)

        report = fresh.tune()
        assert any(
            d.columns == ("community", "status") for d in report.created
        )

    def test_save_without_trained_model(self, people_db, tmp_path):
        advisor = AutoIndexAdvisor(people_db)
        advisor.observe(QUERIES[0])
        advisor.save_state(tmp_path)
        assert (tmp_path / "templates.json").exists()
        assert not (tmp_path / "estimator.npz").exists()

    def test_load_from_empty_directory_is_noop(self, people_db, tmp_path):
        advisor = AutoIndexAdvisor(people_db)
        advisor.observe(QUERIES[0])
        advisor.load_state(tmp_path / "missing")
        assert len(advisor.store) == 1
