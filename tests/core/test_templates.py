"""SQL2Template store tests: matching, eviction, decay, drift."""

import pytest

from repro.core.templates import QueryTemplate, TemplateStore


class TestMatching:
    def test_same_shape_matches(self):
        store = TemplateStore()
        a = store.observe("SELECT a FROM t WHERE b = 1")
        b = store.observe("SELECT a FROM t WHERE b = 2")
        assert a is b
        assert len(store) == 1
        assert a.frequency == 2.0

    def test_different_shapes_create_templates(self):
        store = TemplateStore()
        store.observe("SELECT a FROM t WHERE b = 1")
        store.observe("SELECT a FROM t WHERE c = 1")
        assert len(store) == 2

    def test_sample_sql_is_latest(self):
        store = TemplateStore()
        store.observe("SELECT a FROM t WHERE b = 1")
        template = store.observe("SELECT a FROM t WHERE b = 99")
        assert template.sample_sql.endswith("99")

    def test_write_flag(self):
        store = TemplateStore()
        read = store.observe("SELECT a FROM t WHERE b = 1")
        write = store.observe("UPDATE t SET a = 1 WHERE b = 2")
        assert not read.is_write
        assert write.is_write

    def test_tables_property(self):
        store = TemplateStore()
        select = store.observe("SELECT a FROM t1, t2 WHERE t1.x = t2.y")
        update = store.observe("UPDATE t3 SET a = 1")
        assert set(select.tables) == {"t1", "t2"}
        assert update.tables == ("t3",)

    def test_total_counters(self):
        store = TemplateStore()
        for i in range(5):
            store.observe(f"SELECT a FROM t WHERE b = {i}")
        store.observe("SELECT z FROM u")
        assert store.total_observed == 6
        assert store.total_new_templates == 2


class TestCapacity:
    def test_eviction_at_capacity(self):
        store = TemplateStore(capacity=3)
        for i in range(5):
            store.observe(f"SELECT c{i} FROM t")
        assert len(store) == 3

    def test_eviction_prefers_low_frequency(self):
        store = TemplateStore(capacity=2)
        for _ in range(5):
            store.observe("SELECT a FROM t WHERE b = 1")
        store.observe("SELECT b FROM t")
        store.observe("SELECT c FROM t")  # evicts one of the singletons
        assert store.get("SELECT a FROM t WHERE b = $1") is not None


class TestOrdering:
    def test_templates_sorted_by_frequency(self):
        store = TemplateStore()
        for _ in range(3):
            store.observe("SELECT a FROM t WHERE b = 1")
        store.observe("SELECT z FROM u")
        ordered = store.templates()
        assert ordered[0].frequency == 3.0

    def test_top_limits(self):
        store = TemplateStore()
        for i in range(10):
            store.observe(f"SELECT c{i} FROM t")
        assert len(store.templates(top=4)) == 4


class TestWindows:
    def test_window_frequency_tracks_recent(self):
        store = TemplateStore()
        store.observe("SELECT a FROM t WHERE b = 1")
        store.begin_tuning_window()
        template = store.observe("SELECT a FROM t WHERE b = 2")
        assert template.frequency == 2.0
        assert template.window_frequency == 1.0

    def test_weight_prefers_recent(self):
        old = QueryTemplate(
            fingerprint="x", statement=None, frequency=100.0,
            window_frequency=0.0,
        )
        fresh = QueryTemplate(
            fingerprint="y", statement=None, frequency=20.0,
            window_frequency=20.0,
        )
        assert fresh.weight > old.weight


class TestDrift:
    def test_drift_detected_on_novel_flood(self):
        store = TemplateStore(drift_window=50, drift_miss_ratio=0.5)
        for i in range(60):
            store.observe(f"SELECT c{i} FROM t")
        assert store.drift_detected()

    def test_no_drift_on_stable_workload(self):
        store = TemplateStore(drift_window=50)
        store.observe("SELECT a FROM t WHERE b = 0")
        for i in range(60):
            store.observe(f"SELECT a FROM t WHERE b = {i}")
        assert not store.drift_detected()

    def test_handle_drift_decays_and_drops(self):
        store = TemplateStore(decay_factor=0.5, cold_threshold=1.0)
        hot = store.observe("SELECT a FROM t WHERE b = 1")
        for _ in range(7):
            store.observe("SELECT a FROM t WHERE b = 1")
        store.observe("SELECT z FROM u")  # freq 1 -> decays to 0.5 -> cold
        removed = store.handle_drift()
        assert removed == 1
        assert hot.frequency == 4.0
        assert len(store) == 1

    def test_drift_window_resets_after_handling(self):
        store = TemplateStore(drift_window=10, drift_miss_ratio=0.5)
        for i in range(12):
            store.observe(f"SELECT c{i} FROM t")
        assert store.drift_detected()
        store.handle_drift()
        assert not store.drift_detected()


class TestSharding:
    def test_shard_per_primary_table(self):
        store = TemplateStore()
        store.observe("SELECT a FROM t WHERE b = 1")
        store.observe("SELECT a FROM u WHERE b = 1")
        store.observe("SELECT c FROM u")
        assert store.shard_stats() == {"t": 1, "u": 2}

    def test_templates_for_tables_scopes_to_shards(self):
        store = TemplateStore()
        store.observe("SELECT a FROM t WHERE b = 1")
        store.observe("SELECT a FROM u WHERE b = 1")
        scoped = store.templates_for_tables(["u"])
        assert len(scoped) == 1
        assert scoped[0].tables == ("u",)

    def test_templates_for_tables_includes_secondary_references(self):
        store = TemplateStore()
        joined = store.observe(
            "SELECT t.a FROM t JOIN u ON t.id = u.id WHERE u.b = 1"
        )
        # The template shards under its primary referenced table, but
        # a scope on the *other* joined table must still find it via
        # the table index.
        primary = joined.tables[0]
        secondary = next(t for t in joined.tables if t != primary)
        assert store.shard_stats() == {primary: 1}
        scoped = store.templates_for_tables([secondary])
        assert scoped == [joined]

    def test_templates_for_tables_orders_hottest_first(self):
        store = TemplateStore()
        for _ in range(3):
            store.observe("SELECT a FROM t WHERE b = 1")
        store.observe("SELECT c FROM t")
        scoped = store.templates_for_tables(["t"])
        assert scoped[0].frequency >= scoped[1].frequency

    def test_eviction_charges_largest_shard(self):
        store = TemplateStore(capacity=4)
        for i in range(4):
            store.observe(f"SELECT c{i} FROM big")
        store.observe("SELECT a FROM small")
        # The overflowing template lands; the over-budget shard pays.
        assert len(store) == 4
        stats = store.shard_stats()
        assert stats["small"] == 1
        assert stats["big"] == 3

    def test_shard_budget_splits_capacity(self):
        store = TemplateStore(capacity=10)
        store.observe("SELECT a FROM t")
        store.observe("SELECT a FROM u")
        assert store.shard_budget() == 5

    def test_removal_cleans_empty_shard(self):
        store = TemplateStore(decay_factor=0.5, cold_threshold=1.0)
        store.observe("SELECT a FROM t WHERE b = 1")
        store.observe("SELECT z FROM u")
        for _ in range(7):
            store.observe("SELECT a FROM t WHERE b = 1")
        store.handle_drift()  # the cold u template is dropped
        assert "u" not in store.shard_stats()
        assert store.templates_for_tables(["u"]) == []
