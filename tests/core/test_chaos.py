"""Resilience under injected faults: the chaos invariants.

The acceptance invariant for the resilient runtime: with 10–30% fault
rates on estimator predictions and index builds, every tuning round
completes without an unhandled exception, the catalog is never left
partially applied, and with faults disabled behaviour is identical to
a database without the fault machinery at all.
"""

import random
import tempfile

import pytest

from repro.core.advisor import AutoIndexAdvisor
from repro.core.changeset import IndexChangeSet
from repro.core.estimator import (
    BenefitEstimator,
    DeepIndexEstimator,
    EstimatorUnavailable,
    WhatIfCostModel,
)
from repro.core.templates import TemplateStore
from repro.ports.memory import MemoryBackend
from repro.engine.faults import (
    FAULT_POINTS,
    FaultError,
    FaultPlan,
    PERMANENT,
    TRANSIENT,
)
from repro.engine.index import IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table

READS = [
    f"SELECT id FROM people WHERE community = {i % 10} "
    "AND status = 'suspect'"
    for i in range(40)
]
UPDATES = [
    "UPDATE people SET status = 'healthy', community = 2 "
    f"WHERE id = {i}"
    for i in range(300)
]


def make_people_db() -> MemoryBackend:
    """A fresh copy of the conftest ``people_db`` (for twin-run tests)."""
    db = MemoryBackend()
    db.create_table(
        table(
            "people",
            [
                ("id", T.INT),
                ("name", T.TEXT),
                ("community", T.INT),
                ("temperature", T.FLOAT),
                ("status", T.TEXT),
            ],
            primary_key=["id"],
        )
    )
    rng = random.Random(7)
    db.load_rows(
        "people",
        [
            (
                i,
                f"person_{i}",
                rng.randrange(20),
                round(36.0 + rng.random() * 5.0, 1),
                rng.choice(("healthy", "suspect", "confirmed")),
            )
            for i in range(2000)
        ],
    )
    db.analyze()
    return db


def attach(db: MemoryBackend, plan: FaultPlan):
    """Install a fault injector on an already-built database."""
    injector = plan.injector()
    db.faults = injector
    db.planner.faults = injector
    return injector


def run_round(db, advisor, queries):
    """Execute + observe a batch, tune once, and assert atomicity."""
    for sql in queries:
        try:
            db.execute(sql)
        except FaultError:
            continue
        advisor.observe(sql)
    before = {d.key for d in db.index_defs()}
    report = advisor.tune()
    after = {d.key for d in db.index_defs()}
    expected = (before - {d.key for d in report.dropped}) | {
        d.key for d in report.created
    }
    assert after == expected, "catalog partially applied"
    return report


class TestChaosInvariant:
    @pytest.mark.parametrize(
        "seed,rate,kind",
        [
            (11, 0.10, TRANSIENT),
            (23, 0.20, TRANSIENT),
            (47, 0.30, PERMANENT),
        ],
    )
    def test_rounds_survive_faults(self, seed, rate, kind):
        db = make_people_db()
        attach(
            db,
            FaultPlan.chaos(
                seed=seed,
                rate=rate,
                points=("estimator.predict", "index.build"),
                kind=kind,
            ),
        )
        advisor = AutoIndexAdvisor(db, mcts_iterations=25, seed=seed)
        for queries in (READS, UPDATES, READS):
            run_round(db, advisor, queries)  # asserts atomicity
        assert len(advisor.tuning_history) == 3

    def test_chaos_run_replays_bitwise(self):
        def one_run():
            db = make_people_db()
            attach(
                db,
                FaultPlan.chaos(
                    seed=23,
                    rate=0.25,
                    points=("estimator.predict", "index.build"),
                ),
            )
            advisor = AutoIndexAdvisor(db, mcts_iterations=25, seed=5)
            reports = [
                run_round(db, advisor, q) for q in (READS, UPDATES)
            ]
            return [
                (
                    sorted(str(d) for d in r.created),
                    sorted(str(d) for d in r.dropped),
                    r.estimated_benefit,
                    r.retries,
                    r.fallbacks,
                    r.rolled_back,
                    r.degraded,
                )
                for r in reports
            ]

        assert one_run() == one_run()

    def test_faults_off_identical_to_no_injector(self):
        """Zero-rate rules on every point must not perturb anything."""

        def one_run(with_machinery: bool):
            db = make_people_db()
            if with_machinery:
                attach(db, FaultPlan.chaos(seed=99, rate=0.0))
            advisor = AutoIndexAdvisor(db, mcts_iterations=40, seed=5)
            reports = [
                run_round(db, advisor, q) for q in (READS, UPDATES)
            ]
            return [
                (
                    sorted(str(d) for d in r.created),
                    sorted(str(d) for d in r.dropped),
                    r.estimated_benefit,
                    r.baseline_cost,
                    r.estimator_calls,
                    r.plans_computed,
                )
                for r in reports
            ]

        assert one_run(True) == one_run(False)
        # And the disabled machinery reports zero interference.
        assert FaultPlan.chaos(seed=99, rate=0.0).injector().total_fired() == 0


class TestDegradationLadder:
    def observed_template(self, db, sql=READS[0]):
        store = TemplateStore()
        return store.observe(sql, db.parse_statement(sql))

    def test_transient_fault_retried(self, people_db):
        people_db.faults = FaultPlan(seed=0).add(
            "estimator.predict", schedule=[1]
        ).injector()
        estimator = BenefitEstimator(people_db)
        template = self.observed_template(people_db)
        cost = estimator.query_cost(template, people_db.index_defs())
        assert cost > 0
        assert estimator.retries == 1
        assert estimator.fallbacks == 0
        assert estimator.clock.now() > 0  # backoff on the virtual clock

    def test_transient_exhaustion_demotes_model(self, people_db):
        people_db.faults = FaultPlan(seed=0).add(
            "estimator.predict", schedule=[1, 2, 3, 4]
        ).injector()
        estimator = BenefitEstimator(
            people_db, model=DeepIndexEstimator()
        )
        template = self.observed_template(people_db)
        cost = estimator.query_cost(template, people_db.index_defs())
        assert cost > 0
        assert estimator.retries == 3
        assert estimator.fallbacks == 1
        assert isinstance(estimator.model, WhatIfCostModel)
        assert "exhausted retries" in estimator.degraded_reason

    def test_permanent_fault_demotes_without_retry(self, people_db):
        people_db.faults = FaultPlan(seed=0).add(
            "estimator.predict", schedule=[1], kind=PERMANENT
        ).injector()
        estimator = BenefitEstimator(
            people_db, model=DeepIndexEstimator()
        )
        template = self.observed_template(people_db)
        assert estimator.query_cost(template, people_db.index_defs()) > 0
        assert estimator.retries == 0
        assert estimator.fallbacks == 1

    def test_unusable_fallback_raises_estimator_unavailable(
        self, people_db
    ):
        people_db.faults = FaultPlan(seed=0).add(
            "estimator.predict", probability=1.0, kind=PERMANENT
        ).injector()
        estimator = BenefitEstimator(people_db)  # what-if already
        template = self.observed_template(people_db)
        with pytest.raises(EstimatorUnavailable):
            estimator.query_cost(template, people_db.index_defs())

    def test_advisor_skips_round_when_estimator_unusable(
        self, people_db
    ):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=25)
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        attach(
            people_db,
            FaultPlan(seed=0).add(
                "estimator.predict", probability=1.0, kind=PERMANENT
            ),
        )
        advisor.estimator.faults = people_db.faults
        before = {d.key for d in people_db.index_defs()}
        report = advisor.tune()  # must not raise
        assert report.skipped
        assert "unusable" in report.degraded
        assert {d.key for d in people_db.index_defs()} == before
        assert "degraded" in report.render()

    def test_resilience_stats_surface_counters(self, people_db):
        people_db.faults = FaultPlan(seed=0).add(
            "estimator.predict", schedule=[1]
        ).injector()
        estimator = BenefitEstimator(people_db)
        template = self.observed_template(people_db)
        estimator.query_cost(template, people_db.index_defs())
        stats = estimator.resilience_stats()
        assert stats["retries"] == 1
        assert stats["backoff_virtual_seconds"] > 0


class TestPlaceholderFallback:
    def test_unparsable_sample_counted_not_swallowed(self, people_db):
        estimator = BenefitEstimator(people_db)
        store = TemplateStore()
        template = store.observe(
            READS[0], people_db.parse_statement(READS[0])
        )
        template.sample_sql = "THIS IS NOT SQL"
        cost = estimator.query_cost(template, people_db.index_defs())
        assert cost > 0  # placeholder form still estimates
        assert estimator.placeholder_fallbacks == 1
        assert estimator.resilience_stats()["placeholder_fallbacks"] == 1


class TestGuardedApply:
    IDX_A = IndexDef(table="people", columns=("community", "status"))
    IDX_B = IndexDef(table="people", columns=("temperature",))

    def test_rollback_restores_snapshot_on_failed_create(
        self, people_db
    ):
        attach(
            people_db,
            FaultPlan(seed=0).add("index.build", schedule=[2]),
        )
        changeset = IndexChangeSet(people_db)
        with pytest.raises(FaultError):
            changeset.apply(creates=[self.IDX_A, self.IDX_B])
        assert people_db.has_index(self.IDX_A)  # first one landed
        assert changeset.rollback() == 1
        assert changeset.matches_snapshot()
        assert not people_db.has_index(self.IDX_A)
        assert not people_db.has_index(self.IDX_B)

    def test_rollback_recreates_dropped_indexes(self, people_db):
        people_db.create_index(self.IDX_A)  # before injection starts
        attach(
            people_db,
            # Drops check index.build too now, so the drop is visit 1
            # and the create is visit 2.
            FaultPlan(seed=0).add("index.build", schedule=[2]),
        )
        changeset = IndexChangeSet(people_db)
        with pytest.raises(FaultError):
            # The drop succeeds, the create faults (visit 2).
            changeset.apply(drops=[self.IDX_A], creates=[self.IDX_B])
        assert changeset.rollback() == 1
        assert changeset.matches_snapshot()
        assert people_db.has_index(self.IDX_A)

    def test_rollback_is_idempotent(self, people_db):
        changeset = IndexChangeSet(people_db)
        changeset.apply(creates=[self.IDX_A])
        assert changeset.rollback() == 1
        assert changeset.rollback() == 0

    def test_tune_rolls_back_on_build_failure(self, people_db):
        attach(
            people_db,
            FaultPlan(seed=0).add("index.build", probability=1.0),
        )
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40)
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        before = {d.key for d in people_db.index_defs()}
        report = advisor.tune()  # must not raise
        assert report.created == []
        assert "apply failed" in report.degraded
        assert {d.key for d in people_db.index_defs()} == before


class TestAutoRevert:
    def test_regressing_index_reverted_next_round(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40)
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        first = advisor.tune()
        created = {d.columns for d in first.created}
        assert ("community", "status") in created
        assert advisor.diagnosis.watched_indexes()

        for sql in UPDATES:
            people_db.execute(sql)
            advisor.observe(sql)
        report = advisor.tune()
        assert ("community", "status") in {
            d.columns for d in report.dropped
        }
        assert report.rolled_back >= 1
        assert not people_db.has_index(
            IndexDef(table="people", columns=("community", "status"))
        )

    def test_healthy_index_survives_window(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40)
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        advisor.tune()
        target = IndexDef(
            table="people", columns=("community", "status")
        )
        assert people_db.has_index(target)
        # Keep the workload read-heavy: the index stays useful.
        for _ in range(2):
            for sql in READS:
                people_db.execute(sql)
                advisor.observe(sql)
            report = advisor.tune()
            assert target.key not in {d.key for d in report.dropped}
        assert people_db.has_index(target)
        # Its window (2 passes) is exhausted: no longer observed.
        assert target.key not in {
            d.key for d in advisor.diagnosis.watched_indexes()
        }

    def test_preview_does_not_consume_window(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40)
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        advisor.tune()
        watched = {d.key for d in advisor.diagnosis.watched_indexes()}
        assert watched
        for _ in range(5):
            advisor.diagnosis.check_applied(consume=False)
        assert {
            d.key for d in advisor.diagnosis.watched_indexes()
        } == watched


class TestAnytimeSearch:
    def test_max_evaluations_bounds_search(self, people_db):
        advisor = AutoIndexAdvisor(
            people_db, mcts_iterations=40, mcts_max_evaluations=1
        )
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        report = advisor.tune()  # must return best-so-far, not crash
        assert report.deadline_hit
        assert report.search.deadline_hit
        assert "deadline" in report.render()

    def test_zero_deadline_returns_immediately(self, people_db):
        advisor = AutoIndexAdvisor(
            people_db, mcts_iterations=40, mcts_deadline_seconds=0.0
        )
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        report = advisor.tune()
        assert report.deadline_hit
        assert report.created == []  # no time to find anything

    def test_no_deadline_by_default(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=25)
        for sql in READS[:10]:
            people_db.execute(sql)
            advisor.observe(sql)
        assert not advisor.tune().deadline_hit


class TestRobustObserve:
    def test_unparsable_statement_counted_not_raised(self, people_db):
        advisor = AutoIndexAdvisor(people_db)
        assert advisor.observe("THIS IS NOT SQL") is None
        assert advisor.observe_failures == 1
        assert len(advisor.store) == 0

    def test_parser_fault_counted_not_raised(self, people_db):
        attach(
            people_db,
            FaultPlan(seed=0).add("parser.parse", schedule=[1]),
        )
        advisor = AutoIndexAdvisor(people_db)
        assert advisor.observe(READS[0]) is None
        assert advisor.observe_failures == 1
        # Next observation (no fault scheduled) works normally.
        assert advisor.observe(READS[0]) is not None


class TestQueryLevelAblation:
    def test_first_observation_counted_once(self, people_db):
        advisor = AutoIndexAdvisor(people_db, use_templates=False)
        advisor.observe(READS[0])
        assert advisor.store.get(READS[0]).frequency == 1.0
        advisor.observe(READS[0])
        advisor.observe(READS[0])
        assert advisor.store.get(READS[0]).frequency == 3.0

    def test_statements_analyzed_per_statement(self, people_db):
        advisor = AutoIndexAdvisor(people_db, use_templates=False)
        for sql in READS:
            advisor.observe(sql)
        assert advisor.statements_analyzed == len(READS)
        # 10 distinct literal bindings -> 10 raw-text "templates".
        assert len(advisor.store) == 10

    def test_observe_raw_shares_store_clock(self):
        store = TemplateStore()
        store.observe_raw("SELECT id FROM people WHERE community = 1")
        store.observe_raw("SELECT id FROM people WHERE community = 2")
        assert store.total_observed == 2
        assert len(store) == 2  # no parameterization collapse

    def test_observe_raw_capacity_evicts(self):
        store = TemplateStore(capacity=2)
        for i in range(4):
            store.observe_raw(
                f"SELECT id FROM people WHERE community = {i}"
            )
        assert len(store) == 2


def test_all_fault_points_reachable(people_db):
    """Every declared fault point is actually visited by the stack."""
    injector = attach(people_db, FaultPlan(seed=0))
    advisor = AutoIndexAdvisor(people_db, mcts_iterations=25)
    for sql in READS:
        people_db.execute(sql)
        advisor.observe(sql)
    people_db.analyze()
    advisor.tune()
    with tempfile.TemporaryDirectory() as tmp:
        advisor.save_state(tmp)
        advisor.load_state(tmp)
    assert set(injector.visits) == set(FAULT_POINTS)
