"""Candidate generation edge cases: operators, scopes, and gates."""

import pytest

from repro.core.candidates import CandidateGenerator
from repro.engine.index import IndexDef
from repro.sql import parse


@pytest.fixture
def generator(join_db):
    return CandidateGenerator(join_db)


def defs(generator, sql):
    return generator.for_statement(parse(sql))


class TestOperatorForms:
    def test_in_list_counts_as_equality_prefix(self, generator):
        result = defs(
            generator,
            "SELECT oid FROM orders WHERE status IN ('void') "
            "AND amount > 999",
        )
        assert any(
            d.columns == ("status", "amount") for d in result
        )

    def test_like_prefix_produces_candidate(self, join_db):
        # NB: '_' is a single-char wildcard in LIKE, so the usable
        # prefix stops before it; use wildcard-free names here.
        from repro.engine.schema import ColumnType as T
        from repro.engine.schema import table

        join_db.create_table(table("tags", [("label", T.TEXT)]))
        join_db.load_rows(
            "tags", [(f"tag{i:04d}",) for i in range(400)]
        )
        join_db.analyze("tags")
        generator = CandidateGenerator(join_db)
        result = defs(
            generator, "SELECT label FROM tags WHERE label LIKE 'tag01%'"
        )
        assert IndexDef(table="tags", columns=("label",)) in result

    def test_like_prefix_stops_at_underscore_wildcard(self, generator):
        # 'cust_1%' only has usable prefix 'cust' (matches everything
        # in this table), so the selectivity gate rejects it.
        result = defs(
            generator,
            "SELECT cid FROM customers WHERE name LIKE 'cust_1%'",
        )
        assert IndexDef(table="customers", columns=("name",)) not in result

    def test_like_without_prefix_gated(self, generator):
        # '%x' keeps ~everything by the default LIKE selectivity? No —
        # DEFAULT_LIKE is 0.1 < 1/3, so it passes the gate; the point
        # is it must not crash and must stay single-column.
        result = defs(
            generator,
            "SELECT cid FROM customers WHERE name LIKE '%9'",
        )
        for d in result:
            assert d.columns == ("name",)

    def test_between_candidate(self, generator):
        result = defs(
            generator,
            "SELECT oid FROM orders WHERE amount BETWEEN 995 AND 1000",
        )
        assert IndexDef(table="orders", columns=("amount",)) in result

    def test_not_equal_does_not_gate_in(self, generator):
        # <> keeps almost everything: no candidate should be produced.
        result = defs(
            generator, "SELECT oid FROM orders WHERE status <> 'paid'"
        )
        assert result == []

    def test_is_null_candidate_gated_when_no_nulls(self, generator):
        # The orders table has no NULL status: selectivity ~0 → index
        # passes the gate (it's very selective).
        result = defs(
            generator, "SELECT oid FROM orders WHERE status IS NULL"
        )
        assert IndexDef(table="orders", columns=("status",)) in result


class TestUnknownColumns:
    def test_unknown_column_produces_nothing(self, generator):
        result = defs(
            generator, "SELECT oid FROM orders WHERE nonexistent = 1"
        )
        assert result == []

    def test_unknown_table_produces_nothing(self, generator):
        result = defs(
            generator, "SELECT x FROM no_such_table WHERE x = 1"
        )
        assert result == []


class TestGateBoundaries:
    def test_threshold_is_configurable(self, join_db):
        tight = CandidateGenerator(
            join_db, selectivity_threshold=0.0001
        )
        loose = CandidateGenerator(
            join_db, selectivity_threshold=1.0
        )
        sql = "SELECT oid FROM orders WHERE status = 'paid'"
        assert defs(tight, sql) == []
        assert defs(loose, sql) != []

    def test_single_valued_column_rejected(self, join_db):
        # A column with one distinct value can never discriminate.
        from repro.engine.schema import ColumnType as T
        from repro.engine.schema import table

        join_db.create_table(table("flags", [("f", T.INT)]))
        join_db.load_rows("flags", [(1,)] * 50)
        join_db.analyze("flags")
        generator = CandidateGenerator(join_db)
        assert defs(generator, "SELECT f FROM flags WHERE f = 1") == []


class TestGenerateOrdering:
    def test_generate_handles_mixed_statement_kinds(self, join_db):
        from repro.core.templates import TemplateStore

        store = TemplateStore()
        store.observe("SELECT oid FROM orders WHERE amount > 999")
        store.observe("UPDATE orders SET amount = 1 WHERE status = 'void'")
        store.observe("DELETE FROM orders WHERE amount BETWEEN 0 AND 1")
        store.observe(
            "INSERT INTO orders (oid, cid, amount, status) "
            "VALUES (99999, 1, 2.0, 'open')"
        )
        generator = CandidateGenerator(join_db)
        candidates = generator.generate(store.templates())
        tables = {c.definition.table for c in candidates}
        assert tables == {"orders"}
        columns = {c.definition.columns for c in candidates}
        assert ("amount",) in columns
        assert ("status",) in columns
