"""Estimator persistence and explain-analyze instrumentation tests."""

import numpy as np
import pytest

from repro.core.estimator import DeepIndexEstimator


def dataset(n=120, seed=2):
    rng = np.random.default_rng(seed)
    X = rng.uniform(1, 100, size=(n, 5))
    y = X @ np.array([1.0, 2.0, 0.5, 0.1, 0.3]) + rng.normal(0, 1, n)
    return X, np.maximum(y, 0.1)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        X, y = dataset()
        model = DeepIndexEstimator(epochs=200)
        model.fit(X, y)
        path = tmp_path / "estimator.npz"
        model.save(path)
        restored = DeepIndexEstimator.load(path)
        assert np.allclose(model.predict(X), restored.predict(X))

    def test_save_untrained_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            DeepIndexEstimator().save(tmp_path / "x.npz")

    def test_loaded_model_usable_in_benefit_estimator(
        self, tmp_path, people_db
    ):
        from repro.core.estimator import BenefitEstimator
        from repro.core.templates import TemplateStore

        X, y = dataset()
        model = DeepIndexEstimator(epochs=100)
        model.fit(X, y)
        path = tmp_path / "estimator.npz"
        model.save(path)

        estimator = BenefitEstimator(
            people_db, model=DeepIndexEstimator.load(path)
        )
        store = TemplateStore()
        store.observe("SELECT id FROM people WHERE community = 1")
        cost = estimator.workload_cost(
            store.templates(), people_db.index_defs()
        )
        assert cost > 0


class TestExplainAnalyze:
    def test_shows_estimate_and_actual(self, people_db):
        text = people_db.explain_analyze(
            "SELECT id FROM people WHERE community = 3"
        )
        assert "estimated cost:" in text
        assert "actual cost:" in text
        assert "seq_pages=" in text or "random_pages=" in text

    def test_runs_the_statement(self, people_db):
        before = people_db.monitor.total_queries
        people_db.explain_analyze("SELECT count(*) FROM people")
        assert people_db.monitor.total_queries == before + 1

    def test_write_statement(self, people_db):
        text = people_db.explain_analyze(
            "UPDATE people SET status = 'x' WHERE id = 1"
        )
        assert "Update" in text
        assert "actual cost:" in text
