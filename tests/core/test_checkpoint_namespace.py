"""Per-tenant checkpoint namespaces: encoding, isolation, and the
atomic/.prev/manifest guarantees under rapid successive saves."""

from __future__ import annotations

import json

import pytest

from repro.core import checkpoint


# ---------------------------------------------------------------------------
# tenant id encoding
# ---------------------------------------------------------------------------


def test_safe_ids_round_trip_verbatim():
    for tenant_id in ("alpha", "Tenant-7", "a_b-c9"):
        encoded = checkpoint.encode_tenant_id(tenant_id)
        assert encoded == tenant_id
        assert checkpoint.decode_tenant_id(encoded) == tenant_id


def test_hostile_ids_cannot_escape_or_collide():
    hostile = ["../evil", "a/b", "a.prev", "a b", "ünïcode", "."]
    encoded = [checkpoint.encode_tenant_id(t) for t in hostile]
    # No path separators, no dots — so no traversal and no
    # collision with the .prev generation suffix.
    for enc in encoded:
        assert "/" not in enc and "." not in enc
    # Injective: distinct ids stay distinct.
    assert len(set(encoded)) == len(hostile)
    for tenant_id, enc in zip(hostile, encoded):
        assert checkpoint.decode_tenant_id(enc) == tenant_id


def test_empty_tenant_id_rejected():
    with pytest.raises(ValueError):
        checkpoint.encode_tenant_id("")


def test_namespaces_are_disjoint(tmp_path):
    a = checkpoint.tenant_namespace(tmp_path, "alpha")
    b = checkpoint.tenant_namespace(tmp_path, "beta")
    assert a != b
    assert a.parent == b.parent == tmp_path


def test_list_tenant_namespaces_decodes_and_sorts(tmp_path):
    for tenant_id in ("beta", "alpha", "has space"):
        checkpoint.tenant_namespace(tmp_path, tenant_id).mkdir(
            parents=True
        )
    (tmp_path / "unrelated").mkdir()
    assert checkpoint.list_tenant_namespaces(tmp_path) == [
        "alpha",
        "beta",
        "has space",
    ]


# ---------------------------------------------------------------------------
# rapid successive saves into one namespace
# ---------------------------------------------------------------------------


def _save(directory, generation: int):
    blob = json.dumps({"generation": generation}).encode("utf-8")
    return checkpoint.write_checkpoint(
        directory, {"state.json": blob}
    )


def _load_generation(directory):
    manifest = checkpoint.read_manifest(directory)
    report = checkpoint.CheckpointLoadReport()
    state = checkpoint.read_component(
        directory,
        "state.json",
        lambda blob: json.loads(blob.decode("utf-8")),
        manifest,
        report,
    )
    return state, report


def test_rapid_saves_retain_previous_generation(tmp_path):
    namespace = checkpoint.tenant_namespace(tmp_path, "alpha")
    for generation in range(5):
        _save(namespace, generation)
    # Current generation is the last save; .prev is the one before.
    state, _ = _load_generation(namespace)
    assert state == {"generation": 4}
    prev = json.loads(
        (namespace / "state.json.prev").read_bytes().decode("utf-8")
    )
    assert prev == {"generation": 3}
    manifest_prev = json.loads(
        (namespace / (checkpoint.MANIFEST_NAME + ".prev"))
        .read_bytes()
        .decode("utf-8")
    )
    assert isinstance(manifest_prev.get("components"), dict)


def test_corrupt_current_falls_back_to_prev(tmp_path):
    namespace = checkpoint.tenant_namespace(tmp_path, "alpha")
    _save(namespace, 0)
    _save(namespace, 1)
    # Simulate a torn write of the current generation.
    (namespace / "state.json").write_bytes(b'{"generation":')
    state, report = _load_generation(namespace)
    assert state == {"generation": 0}
    (component,) = report.components
    assert component.status == "fallback"


def test_corrupt_manifest_falls_back_to_prev_manifest(tmp_path):
    namespace = checkpoint.tenant_namespace(tmp_path, "alpha")
    _save(namespace, 0)
    _save(namespace, 1)
    (namespace / checkpoint.MANIFEST_NAME).write_bytes(b"not json")
    manifest = checkpoint.read_manifest(namespace)
    assert manifest is not None
    assert "state.json" in manifest["components"]
    state, _ = _load_generation(namespace)
    assert state == {"generation": 1}


def test_namespaced_saves_do_not_cross_tenants(tmp_path):
    alpha = checkpoint.tenant_namespace(tmp_path, "alpha")
    beta = checkpoint.tenant_namespace(tmp_path, "beta")
    _save(alpha, 10)
    _save(beta, 20)
    assert _load_generation(alpha)[0] == {"generation": 10}
    assert _load_generation(beta)[0] == {"generation": 20}
