"""Delta-costing engine tests: cache tiers, delta==full, MCTS wiring."""

import random

import numpy as np
import pytest

from repro.core.candidates import CandidateGenerator
from repro.core.estimator import BenefitEstimator
from repro.core.mcts import MctsIndexSelector
from repro.core.templates import TemplateStore
from repro.ports.memory import MemoryBackend
from repro.engine.index import IndexDef
from repro.engine.metrics import LruCache
from repro.workloads.banking import BankingWorkload
from repro.workloads.tpcc import TpccWorkload


def _observed(db, generator, count, seed=3):
    store = TemplateStore()
    for query in generator.queries(count, seed=seed):
        store.observe(query.sql, db.parse_statement(query.sql))
    return store.templates(top=80)


def _build(generator, count=150):
    db = MemoryBackend()
    generator.build(db)
    templates = _observed(db, generator, count)
    candidates = [
        c.definition
        for c in CandidateGenerator(db).generate(templates)
    ]
    return db, templates, candidates


@pytest.fixture(scope="module")
def tpcc():
    return _build(TpccWorkload(scale=1, seed=11))


@pytest.fixture(scope="module")
def banking():
    return _build(
        BankingWorkload(accounts=300, txn_rows=900, product_rows=40)
    )


class TestLruCache:
    def test_size_is_bounded_and_evictions_counted(self):
        cache = LruCache(maxsize=3)
        for i in range(10):
            cache.put(i, i * 10)
        assert len(cache) == 3
        assert cache.evictions == 7
        assert cache.stats().evictions == 7

    def test_get_refreshes_recency(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts "b", the least recently used
        assert "a" in cache
        assert "b" not in cache

    def test_hit_and_miss_counters(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("nope") is None
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_zero_maxsize_disables_caching(self):
        cache = LruCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_estimator_cache_is_bounded(self, tpcc):
        db, templates, _candidates = tpcc
        estimator = BenefitEstimator(db, cache_size=4)
        defs = db.index_defs()
        for template in templates:
            estimator.query_cost(template, defs)
        assert len(estimator._cache) <= 4
        if len(templates) > 4:
            assert estimator._cache.evictions > 0


class TestRelevantConfigSharing:
    def test_irrelevant_index_shares_cache_entry(self, tpcc):
        """Configs differing only on an unreferenced table share the
        same cost-cache entry (and cost)."""
        db, templates, _candidates = tpcc
        estimator = BenefitEstimator(db)
        template = next(
            t for t in templates if "customer" in t.fingerprint
        )
        config = db.index_defs()
        # TPC-C customer statements never touch the item table.
        extra = config + [IndexDef(table="item", columns=("i_price",))]
        first = estimator.query_cost(template, config)
        calls = estimator.estimate_calls
        plans = estimator.plans_computed
        second = estimator.query_cost(template, extra)
        assert second == first
        assert estimator.estimate_calls == calls  # cache hit
        assert estimator.plans_computed == plans


def _random_config(rng, candidates, existing):
    base = list(existing)
    picked = rng.sample(
        candidates, k=rng.randint(0, min(6, len(candidates)))
    )
    seen = {d.key for d in base}
    return base + [d for d in picked if d.key not in seen]


def _mutate(rng, config, candidates, protected):
    """A child config: up to 2 additions and 1 removal."""
    child = {d.key: d for d in config}
    for d in rng.sample(candidates, k=min(2, len(candidates))):
        child.setdefault(d.key, d)
    removable = [k for k in child if k not in protected]
    if removable and rng.random() < 0.7:
        child.pop(rng.choice(sorted(removable)))
    return list(child.values())


class TestDeltaEqualsFull:
    @pytest.mark.parametrize("workload", ["tpcc", "banking"])
    def test_delta_is_bitwise_identical_to_full(
        self, workload, request
    ):
        db, templates, candidates = request.getfixturevalue(workload)
        estimator = BenefitEstimator(db)
        existing = db.index_defs()
        protected = {d.key for d in existing if d.unique}
        rng = random.Random(97)
        for _ in range(25):
            parent = _random_config(rng, candidates, existing)
            child = _mutate(rng, parent, candidates, protected)
            parent_costs = estimator.workload_costs(templates, parent)
            total, costs = estimator.workload_cost_delta(
                parent_costs, templates, parent, child
            )
            full_costs = estimator.workload_costs(templates, child)
            assert np.array_equal(costs, full_costs)
            assert total == float(full_costs.sum())

    def test_delta_matches_fresh_estimator(self, tpcc):
        """Bitwise equality holds even against an estimator that never
        saw the parent (no shared cache state)."""
        db, templates, candidates = tpcc
        existing = db.index_defs()
        rng = random.Random(5)
        parent = _random_config(rng, candidates, existing)
        child = _mutate(rng, parent, candidates, set())
        warm = BenefitEstimator(db)
        parent_costs = warm.workload_costs(templates, parent)
        total, costs = warm.workload_cost_delta(
            parent_costs, templates, parent, child
        )
        cold = BenefitEstimator(db)
        assert np.array_equal(
            costs, cold.workload_costs(templates, child)
        )
        assert total == cold.workload_cost(templates, child)

    def test_unchanged_config_reuses_parent_costs(self, tpcc):
        db, templates, candidates = tpcc
        estimator = BenefitEstimator(db)
        config = db.index_defs()
        parent_costs = estimator.workload_costs(templates, config)
        plans = estimator.plans_computed
        total, costs = estimator.workload_cost_delta(
            parent_costs, templates, config, list(config)
        )
        assert costs is parent_costs  # verbatim reuse, no copy
        assert total == float(parent_costs.sum())
        assert estimator.plans_computed == plans

    def test_mismatched_parent_costs_rejected(self, tpcc):
        db, templates, _candidates = tpcc
        estimator = BenefitEstimator(db)
        config = db.index_defs()
        with pytest.raises(ValueError):
            estimator.workload_cost_delta(
                np.zeros(len(templates) + 1), templates, config, config
            )


class TestFeatureTierSurvivesRetrain:
    def test_clear_cache_keeps_planned_features(self, tpcc):
        db, templates, candidates = tpcc
        estimator = BenefitEstimator(db)
        config = db.index_defs() + candidates[:3]
        estimator.workload_cost(templates, config)
        plans = estimator.plans_computed
        calls = estimator.estimate_calls
        estimator.clear_cache()  # what train() does on a model swap
        estimator.workload_cost(templates, config)
        assert estimator.plans_computed == plans  # nothing re-planned
        assert estimator.estimate_calls > calls  # but re-predicted

    def test_include_features_flushes_both_tiers(self, tpcc):
        db, templates, _candidates = tpcc
        estimator = BenefitEstimator(db)
        config = db.index_defs()
        estimator.workload_cost(templates, config)
        plans = estimator.plans_computed
        estimator.clear_cache(include_features=True)
        estimator.workload_cost(templates, config)
        assert estimator.plans_computed > plans

    def test_data_change_invalidates_costs(self):
        generator = TpccWorkload(scale=1, seed=11)
        db = MemoryBackend()
        generator.build(db)
        templates = _observed(db, generator, 60)
        estimator = BenefitEstimator(db)
        config = db.index_defs()
        before = estimator.workload_cost(templates, config)
        plans = estimator.plans_computed
        for query in generator.queries(120, seed=8):
            db.execute(query.sql)
        db.analyze()
        estimator.workload_cost(templates, config)
        # The catalog version moved, so both tiers were flushed and
        # the statements were re-planned against the new stats.
        assert estimator.plans_computed > plans
        after_costs = estimator.workload_costs(templates, config)
        assert after_costs.shape == (len(templates),)
        assert before > 0


class TestMctsDeltaWiring:
    def _search(self, tpcc, **kwargs):
        db, templates, candidates = tpcc
        estimator = BenefitEstimator(db)
        selector = MctsIndexSelector(
            estimator, iterations=40, rollouts=2, **kwargs
        )
        existing = db.index_defs()
        return selector.search(
            existing=existing,
            candidates=candidates,
            templates=templates,
            protected=[d for d in existing if d.unique],
        )

    def test_delta_and_full_find_identical_result(self, tpcc):
        on = self._search(tpcc, seed=23, delta_costing=True)
        off = self._search(tpcc, seed=23, delta_costing=False)
        assert on.best_benefit == off.best_benefit
        assert [d.key for d in on.best_config] == [
            d.key for d in off.best_config
        ]
        assert on.evaluations == off.evaluations

    def test_explicit_rng_reproduces_search(self, tpcc):
        a = self._search(tpcc, rng=random.Random(41))
        b = self._search(tpcc, rng=random.Random(41))
        assert a.best_benefit == b.best_benefit
        assert [d.key for d in a.best_config] == [
            d.key for d in b.best_config
        ]

    def test_search_result_carries_cache_stats(self, tpcc):
        result = self._search(tpcc, seed=7)
        assert result.plans_computed > 0
        assert set(result.cache_stats) == {"cost", "features"}
        assert result.cache_stats["cost"].lookups > 0
