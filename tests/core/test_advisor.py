"""AutoIndexAdvisor integration tests."""

import pytest

from repro.core.advisor import AutoIndexAdvisor
from repro.engine.index import IndexDef


def observe_and_run(db, advisor, queries):
    total = 0.0
    for sql in queries:
        total += db.execute(sql).cost
        advisor.observe(sql)
    return total


READS = [
    f"SELECT id FROM people WHERE community = {i % 10} AND status = 'x'"
    for i in range(40)
]
WRITES = [
    "INSERT INTO people (id, name, community, temperature, status) "
    f"VALUES ({100000 + i}, 'w', 1, 37.0, 'y')"
    for i in range(40)
]


class TestTuneRound:
    def test_creates_beneficial_index(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40)
        observe_and_run(people_db, advisor, READS)
        report = advisor.tune()
        assert any(
            d.columns == ("community", "status") for d in report.created
        )
        assert people_db.has_index(
            IndexDef(table="people", columns=("community", "status"))
        )

    def test_tuning_actually_helps(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40)
        before = observe_and_run(people_db, advisor, READS)
        advisor.tune()
        after = sum(people_db.execute(sql).cost for sql in READS)
        assert after < before * 0.8

    def test_report_accounting(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40)
        observe_and_run(people_db, advisor, READS)
        report = advisor.tune()
        assert report.templates_used >= 1
        assert report.candidates_considered >= 1
        assert report.estimator_calls > 0
        assert report.elapsed_seconds >= 0
        assert report.changed

    def test_second_round_incremental(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=40)
        reads = [
            f"SELECT id FROM people WHERE community = {i % 10} "
            "AND status = 'suspect'"
            for i in range(40)
        ]
        observe_and_run(people_db, advisor, reads)
        first = advisor.tune()
        assert any(
            d.columns == ("community", "status") for d in first.created
        )
        # The workload flips to write-heavy on the indexed columns: the
        # index's maintenance cost now outweighs its residual read
        # benefit (the paper's W2 situation), so it must be dropped.
        writes = [
            "UPDATE people SET status = 'healthy', community = 2 "
            f"WHERE id = {i}"
            for i in range(300)
        ]
        observe_and_run(people_db, advisor, writes)
        report = advisor.tune()
        dropped = {d.columns for d in report.dropped}
        assert ("community", "status") in dropped

    def test_pk_never_dropped(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=30)
        observe_and_run(people_db, advisor, WRITES)
        advisor.tune()
        assert people_db.has_index(
            IndexDef(table="people", columns=("id",), name="pk_people",
                     unique=True)
        )

    def test_budget_enforced(self, people_db):
        advisor = AutoIndexAdvisor(
            people_db, storage_budget=0, mcts_iterations=30
        )
        observe_and_run(people_db, advisor, READS)
        report = advisor.tune()
        assert report.created == []


class TestTrigger:
    def test_skip_when_not_forced_and_clean(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=30)
        # A workload the pk already serves perfectly.
        observe_and_run(
            people_db,
            advisor,
            [f"SELECT name FROM people WHERE id = {i}" for i in range(30)],
        )
        report = advisor.tune(force=False, trigger_threshold=0.9)
        assert report.skipped

    def test_forced_tune_never_skips(self, people_db):
        advisor = AutoIndexAdvisor(people_db, mcts_iterations=30)
        observe_and_run(people_db, advisor, READS[:5])
        assert not advisor.tune(force=True).skipped


class TestObservation:
    def test_statements_analyzed_counts_templates_only(self, people_db):
        advisor = AutoIndexAdvisor(people_db)
        for sql in READS:  # 40 queries, 10 distinct literals, 1 template
            advisor.observe(sql)
        assert advisor.statements_analyzed == 1

    def test_query_level_counts_every_statement(self, people_db):
        from repro.core.baselines import QueryLevelAdvisor

        advisor = QueryLevelAdvisor(people_db)
        for sql in READS:
            advisor.observe(sql)
        assert advisor.statements_analyzed == len(READS)

    def test_observe_queries_accepts_objects(self, people_db):
        from repro.workloads.base import Query

        advisor = AutoIndexAdvisor(people_db)
        advisor.observe_queries([Query(sql=READS[0])])
        assert len(advisor.store) == 1


class TestEstimatorTraining:
    def test_record_and_train_flow(self, people_db):
        advisor = AutoIndexAdvisor(people_db)
        for sql in READS[:20]:
            result = people_db.execute(sql)
            advisor.observe(sql)
            advisor.record_execution(sql, result.cost)
        metrics = advisor.train_estimator()
        assert metrics is not None
        assert metrics.samples == 20

    def test_train_without_history_is_noop(self, people_db):
        advisor = AutoIndexAdvisor(people_db)
        assert advisor.train_estimator() is None
