"""MCTS budget-repair unit tests (_fit_to_budget / _fill_budget / _prune)."""

import pytest

from repro.core.estimator import BenefitEstimator
from repro.core.mcts import MctsIndexSelector
from repro.core.templates import TemplateStore
from repro.engine.index import IndexDef


def make_templates(db, queries):
    store = TemplateStore()
    for sql in queries:
        store.observe(sql)
    return store.templates()


@pytest.fixture
def ready_selector(people_db):
    """A selector with search state primed (as search() would set it)."""
    selector = MctsIndexSelector(
        BenefitEstimator(people_db), iterations=10, seed=5
    )
    templates = make_templates(
        people_db,
        ["SELECT id FROM people WHERE community = 1 AND status = 'x'"] * 5
        + ["SELECT count(*) FROM people WHERE temperature >= 40.0"] * 5,
    )
    existing = people_db.index_defs()
    candidates = [
        IndexDef(table="people", columns=("community", "status")),
        IndexDef(table="people", columns=("temperature",)),
        IndexDef(table="people", columns=("name",)),  # useless
    ]
    selector._protected = {d.key for d in existing}
    selector._universe = {d.key: d for d in existing}
    for c in candidates:
        selector._universe[c.key] = c
    selector._candidates = candidates
    selector._templates = templates
    selector._baseline_cost = selector.estimator.workload_cost(
        templates, existing
    )
    return selector, existing, candidates


class TestFitToBudget:
    def test_no_budget_is_identity(self, ready_selector):
        selector, existing, candidates = ready_selector
        selector._budget = None
        config = frozenset(
            d.key for d in existing + candidates
        )
        assert selector._fit_to_budget(config) == config

    def test_shrinks_to_budget(self, ready_selector, people_db):
        selector, existing, candidates = ready_selector
        one_size = people_db.index_size_bytes(candidates[0])
        selector._budget = one_size + 512
        config = frozenset(d.key for d in existing + candidates)
        fitted = selector._fit_to_budget(config)
        assert selector._config_size(fitted) <= selector._budget

    def test_keeps_protected(self, ready_selector, people_db):
        selector, existing, candidates = ready_selector
        selector._budget = 0
        config = frozenset(d.key for d in existing + candidates)
        fitted = selector._fit_to_budget(config)
        for d in existing:
            assert d.key in fitted

    def test_drops_least_valuable_per_byte_first(
        self, ready_selector, people_db
    ):
        selector, existing, candidates = ready_selector
        # Budget fits two of the three candidates: the useless (name,)
        # index must be the one sacrificed.
        two_size = sum(
            people_db.index_size_bytes(c) for c in candidates[:2]
        )
        selector._budget = two_size + 512
        config = frozenset(d.key for d in existing + candidates)
        fitted = selector._fit_to_budget(config)
        assert candidates[0].key in fitted
        assert candidates[1].key in fitted
        assert candidates[2].key not in fitted


class TestFillBudget:
    def test_fills_unused_budget_with_beneficial_candidates(
        self, ready_selector, people_db
    ):
        selector, existing, candidates = ready_selector
        selector._budget = sum(
            people_db.index_size_bytes(c) for c in candidates
        ) + 4096
        start = frozenset(d.key for d in existing)
        filled = selector._fill_budget(start)
        assert candidates[0].key in filled
        assert candidates[1].key in filled

    def test_never_adds_useless_candidates(
        self, ready_selector, people_db
    ):
        selector, existing, candidates = ready_selector
        selector._budget = 10 * 1024 * 1024
        filled = selector._fill_budget(
            frozenset(d.key for d in existing)
        )
        assert candidates[2].key not in filled

    def test_respects_budget(self, ready_selector, people_db):
        selector, existing, candidates = ready_selector
        selector._budget = people_db.index_size_bytes(candidates[0]) + 512
        filled = selector._fill_budget(
            frozenset(d.key for d in existing)
        )
        assert selector._config_size(filled) <= selector._budget

    def test_no_budget_is_identity(self, ready_selector):
        selector, existing, _candidates = ready_selector
        selector._budget = None
        start = frozenset(d.key for d in existing)
        assert selector._fill_budget(start) == start


class TestPrune:
    def test_removes_useless_addition(self, ready_selector):
        selector, existing, candidates = ready_selector
        selector._budget = None
        config = frozenset(
            d.key for d in existing
        ) | {candidates[2].key}
        pruned = selector._prune(config)
        assert candidates[2].key not in pruned

    def test_keeps_beneficial_indexes(self, ready_selector):
        selector, existing, candidates = ready_selector
        selector._budget = None
        config = frozenset(d.key for d in existing) | {
            candidates[0].key, candidates[1].key
        }
        pruned = selector._prune(config)
        assert candidates[0].key in pruned
        assert candidates[1].key in pruned

    def test_never_prunes_protected(self, ready_selector):
        selector, existing, _candidates = ready_selector
        selector._budget = None
        config = frozenset(d.key for d in existing)
        assert selector._prune(config) == config
