"""DBA-in-the-loop review mode, end to end.

The acceptance scenario: with ``apply_mode="review"`` the advisor
never touches the catalog on its own; recommendations queue with an
explanation, a rejected recommendation is *never* applied while its
verdict lands in the estimator's training data, and an accepted one
is applied with the same transactional guarantees as an autonomous
round. The offline flow (review CLI editing a checkpoint the advisor
later restores) is covered in-process via :func:`repro.review.main`.
"""

import pytest

from repro import review
from repro.core.advisor import AutoIndexAdvisor
from repro.engine.faults import FaultError, FaultPlan

from .test_chaos import READS, attach


def reviewed_advisor(db, **kwargs):
    advisor = AutoIndexAdvisor(
        db, mcts_iterations=40, seed=3, apply_mode="review", **kwargs
    )
    for sql in READS:
        db.execute(sql)
        advisor.observe(sql)
    return advisor


class TestGatedRounds:
    def test_review_round_queues_instead_of_applying(self, people_db):
        advisor = reviewed_advisor(people_db)
        before = {d.key for d in people_db.index_defs()}
        report = advisor.tune()
        assert report.gated
        assert "review" in report.gate_reason
        assert report.created == []
        assert {d.key for d in people_db.index_defs()} == before
        pending = advisor.pending_recommendations()
        assert report.queued == pending[0].rec_id
        assert pending[0].additions

    def test_explanation_names_templates_and_tables(self, people_db):
        advisor = reviewed_advisor(people_db)
        advisor.tune()
        rec = advisor.pending_recommendations()[0]
        assert rec.explanation.affected_tables == ["people"]
        assert rec.explanation.per_template
        rendered = rec.render()
        assert "gated because" in rendered
        assert "people" in rendered

    def test_repeated_rounds_dedup_the_same_change(self, people_db):
        advisor = reviewed_advisor(people_db)
        advisor.tune()
        for _ in range(2):
            for sql in READS:
                people_db.execute(sql)
                advisor.observe(sql)
            advisor.tune()
        assert len(advisor.pending_recommendations()) == 1


class TestVerdicts:
    def test_rejection_is_never_applied_and_trains(self, people_db):
        advisor = reviewed_advisor(people_db)
        advisor.tune()
        rec = advisor.pending_recommendations()[0]
        added_keys = {d.key for d in rec.additions}
        history_before = len(advisor.estimator.history)

        advisor.reject_recommendation(rec.rec_id, note="too risky")

        # Never applied — not now, and not by later rounds either.
        assert not added_keys & {
            d.key for d in people_db.index_defs()
        }
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        advisor.tune()
        assert not added_keys & {
            d.key for d in people_db.index_defs()
        }
        # The verdict became labelled training data.
        assert len(advisor.estimator.history) > history_before
        assert rec.consumed and rec.status == "rejected"

    def test_acceptance_applies_and_opens_a_ledger_claim(
        self, people_db
    ):
        advisor = reviewed_advisor(people_db)
        advisor.tune()
        rec = advisor.pending_recommendations()[0]

        advisor.accept_recommendation(rec.rec_id, note="ship it")

        applied = {d.key for d in people_db.index_defs()}
        assert {d.key for d in rec.additions} <= applied
        watched = {d.key for d in advisor.diagnosis.watched_indexes()}
        assert {d.key for d in rec.additions} <= watched
        assert all(
            advisor.safety.ledger.has_pending(d)
            for d in rec.additions
        )
        assert not advisor.pending_recommendations()

    def test_faulted_acceptance_rolls_back_and_stays_retryable(
        self, people_db
    ):
        advisor = reviewed_advisor(people_db)
        advisor.tune()
        rec = advisor.pending_recommendations()[0]
        before = {d.key for d in people_db.index_defs()}
        attach(
            people_db,
            FaultPlan(seed=0).add("index.build", probability=1.0),
        )
        with pytest.raises(FaultError):
            advisor.accept_recommendation(rec.rec_id)
        # Catalog untouched; the verdict survives for a retry.
        assert {d.key for d in people_db.index_defs()} == before
        assert rec.status == "accepted" and not rec.consumed

        people_db.faults = None
        people_db.planner.faults = None
        processed = advisor.process_review_verdicts()
        assert [r.rec_id for r in processed] == [rec.rec_id]
        assert {d.key for d in rec.additions} <= {
            d.key for d in people_db.index_defs()
        }


class TestOfflineReviewCli:
    def test_cli_reject_round_trips_through_a_checkpoint(
        self, people_db, tmp_path
    ):
        advisor = reviewed_advisor(people_db)
        advisor.tune()
        rec = advisor.pending_recommendations()[0]
        added_keys = {d.key for d in rec.additions}
        advisor.save_state(tmp_path)

        assert review.main([str(tmp_path), "list"]) == 0
        assert review.main([str(tmp_path), "show", str(rec.rec_id)]) == 0
        assert (
            review.main(
                [
                    str(tmp_path),
                    "reject",
                    str(rec.rec_id),
                    "--note",
                    "write-heavy table",
                ]
            )
            == 0
        )

        # The advisor process restarts and acts on the verdict.
        fresh = AutoIndexAdvisor(
            people_db, mcts_iterations=40, seed=3, apply_mode="review"
        )
        report = fresh.load_state(tmp_path)
        assert report.loaded("safety.json")
        history_before = len(fresh.estimator.history)
        processed = fresh.process_review_verdicts()
        assert [r.rec_id for r in processed] == [rec.rec_id]
        assert processed[0].verdict_note == "write-heavy table"
        assert len(fresh.estimator.history) > history_before
        assert not added_keys & {
            d.key for d in people_db.index_defs()
        }

    def test_cli_accept_applies_on_next_restore(
        self, people_db, tmp_path
    ):
        advisor = reviewed_advisor(people_db)
        advisor.tune()
        rec = advisor.pending_recommendations()[0]
        advisor.save_state(tmp_path)

        assert (
            review.main(
                [str(tmp_path), "accept", str(rec.rec_id)]
            )
            == 0
        )

        fresh = AutoIndexAdvisor(
            people_db, mcts_iterations=40, seed=3, apply_mode="review"
        )
        fresh.load_state(tmp_path)
        fresh.process_review_verdicts()
        assert {d.key for d in rec.additions} <= {
            d.key for d in people_db.index_defs()
        }
        assert all(
            fresh.safety.ledger.has_pending(d) for d in rec.additions
        )

    def test_cli_rejects_unknown_ids_and_double_verdicts(
        self, people_db, tmp_path
    ):
        advisor = reviewed_advisor(people_db)
        advisor.tune()
        rec = advisor.pending_recommendations()[0]
        advisor.save_state(tmp_path)
        assert review.main([str(tmp_path), "show", "999"]) == 2
        assert review.main([str(tmp_path), "reject", str(rec.rec_id)]) == 0
        # Already resolved: the second verdict must not overwrite.
        assert review.main([str(tmp_path), "accept", str(rec.rec_id)]) == 2

    def test_cli_refuses_a_non_checkpoint_directory(self, tmp_path):
        assert review.main([str(tmp_path / "nope"), "list"]) == 2
