"""Scale-out search guarantees: worker determinism and batch parity.

The parallel rollout machinery promises that ``workers=N`` reproduces
``workers=1`` byte for byte (rollout generation stays on the
parent-side RNG; workers only cost materialised configs; results
merge in submission order), and the vectorized batch costing promises
exact float equality with the per-template scalar path. These tests
pin both contracts on real workloads.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import prepare_database
from repro.core.candidates import CandidateGenerator
from repro.core.estimator import BenefitEstimator
from repro.core.mcts import MctsIndexSelector
from repro.core.templates import TemplateStore
from repro.engine.faults import FaultInjector, FaultPlan
from repro.workloads.banking import BankingWorkload
from repro.workloads.tpcc import TpccWorkload


def _observed(generator, observe: int, top: int):
    db = prepare_database(generator)
    store = TemplateStore()
    for query in generator.queries(observe, seed=3):
        store.observe(query.sql, db.parse_statement(query.sql))
    templates = store.templates(top=top)
    candidates = [
        c.definition for c in CandidateGenerator(db).generate(templates)
    ]
    return db, templates, candidates


@pytest.fixture(scope="module")
def banking_setup():
    return _observed(
        BankingWorkload(accounts=800, txn_rows=2000, product_rows=100),
        observe=120,
        top=60,
    )


@pytest.fixture(scope="module")
def tpcc_setup():
    return _observed(TpccWorkload(scale=1, seed=11), observe=200, top=80)


def _search(db, templates, candidates, workers, seed, vectorized=True):
    estimator = BenefitEstimator(db, vectorized=vectorized)
    selector = MctsIndexSelector(
        estimator,
        iterations=24,
        rollouts=2,
        patience=10**9,
        rng=random.Random(seed),
        workers=workers,
    )
    existing = db.index_defs()
    return selector.search(
        existing=existing,
        candidates=candidates,
        templates=templates,
        protected=[d for d in existing if d.unique],
    )


class TestWorkerDeterminism:
    """``workers`` must never change what the search finds."""

    @pytest.mark.parametrize("workload", ["banking", "tpcc"])
    @pytest.mark.parametrize("seed", [17, 29])
    def test_workers_bit_identical(
        self, workload, seed, banking_setup, tpcc_setup
    ):
        db, templates, candidates = (
            banking_setup if workload == "banking" else tpcc_setup
        )
        base = _search(db, templates, candidates, workers=1, seed=seed)
        for workers in (2, 4):
            result = _search(
                db, templates, candidates, workers=workers, seed=seed
            )
            # Bitwise float equality and identical config sets — not
            # approximate closeness.
            assert result.best_benefit == base.best_benefit
            assert frozenset(result.best_config) == frozenset(
                base.best_config
            )
            assert result.evaluations == base.evaluations

    def test_pool_actually_used(self, tpcc_setup):
        """The determinism test must exercise the pool, not skip it."""
        db, templates, candidates = tpcc_setup
        result = _search(db, templates, candidates, workers=2, seed=17)
        assert result.workers_used == 2

    def test_serial_reports_one_worker(self, tpcc_setup):
        db, templates, candidates = tpcc_setup
        result = _search(db, templates, candidates, workers=1, seed=17)
        assert result.workers_used == 1


class TestParallelGating:
    """The pool must stand down whenever correctness is at stake."""

    def test_faults_force_serial(self, banking_setup):
        db, templates, candidates = banking_setup
        estimator = BenefitEstimator(db)
        estimator.faults = FaultInjector(FaultPlan())
        selector = MctsIndexSelector(
            estimator, iterations=5, rollouts=2, seed=17, workers=4
        )
        assert not selector.parallel_available()

    def test_unsafe_backend_forces_serial(self, banking_setup):
        db, templates, candidates = banking_setup
        estimator = BenefitEstimator(db)
        selector = MctsIndexSelector(
            estimator, iterations=5, rollouts=2, seed=17, workers=4
        )
        assert selector.parallel_available()
        # An adapter that cannot survive a fork (instance attribute
        # shadows the class default, as SqliteBackend sets).
        db.parallel_safe = False
        try:
            assert not selector.parallel_available()
        finally:
            del db.parallel_safe

    def test_sqlite_backend_is_marked_unsafe(self):
        from repro.ports.sqlite import SqliteBackend

        assert SqliteBackend.parallel_safe is False

    def test_gated_search_still_deterministic(self, banking_setup):
        """Even forced serial, workers>1 changes nothing."""
        db, templates, candidates = banking_setup
        base = _search(db, templates, candidates, workers=1, seed=29)
        db.parallel_safe = False
        try:
            gated = _search(db, templates, candidates, workers=4, seed=29)
        finally:
            del db.parallel_safe
        assert gated.workers_used == 1
        assert gated.best_benefit == base.best_benefit
        assert frozenset(gated.best_config) == frozenset(base.best_config)


class TestBatchScalarParity:
    """Vectorized batch costing == per-template scalar costing, exactly."""

    @pytest.mark.parametrize("workload", ["banking", "tpcc"])
    def test_workload_costs_exact(
        self, workload, banking_setup, tpcc_setup
    ):
        db, templates, candidates = (
            banking_setup if workload == "banking" else tpcc_setup
        )
        batched = BenefitEstimator(db)
        scalar = BenefitEstimator(db, vectorized=False)
        rng = random.Random(5)
        for _ in range(12):
            config = rng.sample(
                candidates, k=rng.randrange(0, min(len(candidates), 8))
            )
            got = batched.workload_costs(templates, config)
            want = scalar.workload_costs(templates, config)
            assert got.tolist() == want.tolist()

    def test_delta_matches_scalar_recompute(self, tpcc_setup):
        db, templates, candidates = tpcc_setup
        batched = BenefitEstimator(db)
        scalar = BenefitEstimator(db, vectorized=False)
        rng = random.Random(9)
        parent = rng.sample(candidates, k=min(len(candidates), 5))
        parent_costs = batched.workload_costs(templates, parent)
        for _ in range(6):
            child = list(parent)
            child.remove(rng.choice(child))
            child.append(
                rng.choice([c for c in candidates if c not in child])
            )
            total, costs = batched.workload_cost_delta(
                parent_costs, templates, parent, child
            )
            want = scalar.workload_costs(templates, child)
            assert costs.tolist() == want.tolist()
            assert total == float(want.sum())

    def test_search_identical_across_estimator_modes(self, tpcc_setup):
        db, templates, candidates = tpcc_setup
        batched = _search(
            db, templates, candidates, workers=1, seed=17, vectorized=True
        )
        scalar = _search(
            db, templates, candidates, workers=1, seed=17, vectorized=False
        )
        assert batched.best_benefit == scalar.best_benefit
        assert frozenset(batched.best_config) == frozenset(
            scalar.best_config
        )
        assert batched.evaluations == scalar.evaluations


class TestWorkerDegradeGuard:
    """A mid-job estimator demotion must fail the pool job.

    The demotion (model swap, fallback counter, cache flush) happens
    in the forked worker and is invisible to the parent; the guard in
    ``_pool_cost_job`` turns it into a job failure so the parent
    abandons the pool and recomputes in-process, where the
    degradation applies to the estimator everyone sees.
    """

    def test_pool_job_raises_when_estimator_degrades(self, banking_setup):
        from repro.core import mcts as mcts_mod

        db, templates, candidates = banking_setup
        estimator = BenefitEstimator(db)
        selector = MctsIndexSelector(
            estimator,
            iterations=4,
            rollouts=1,
            patience=10**9,
            rng=random.Random(5),
            workers=1,
        )
        existing = db.index_defs()
        selector.search(
            existing=existing,
            candidates=candidates,
            templates=templates,
            protected=[d for d in existing if d.unique],
        )

        class ExplodingModel:
            def predict(self, matrix):
                raise ValueError("exploding model")

        estimator.model = ExplodingModel()
        estimator.clear_cache()
        mcts_mod._pool_initializer(selector)
        try:
            config = frozenset(d.key for d in candidates[:1])
            with pytest.raises(RuntimeError, match="degraded"):
                mcts_mod._pool_cost_job(tuple(config))
            assert estimator.fallbacks == 1
        finally:
            mcts_mod._WORKER_SELECTOR = None

    def test_pool_job_passes_results_through_when_healthy(
        self, banking_setup
    ):
        from repro.core import mcts as mcts_mod

        db, templates, candidates = banking_setup
        estimator = BenefitEstimator(db)
        selector = MctsIndexSelector(
            estimator,
            iterations=4,
            rollouts=1,
            patience=10**9,
            rng=random.Random(5),
            workers=1,
        )
        existing = db.index_defs()
        selector.search(
            existing=existing,
            candidates=candidates,
            templates=templates,
            protected=[d for d in existing if d.unique],
        )
        mcts_mod._pool_initializer(selector)
        try:
            config = frozenset(d.key for d in candidates[:1])
            job_cost, job_costs = mcts_mod._pool_cost_job(tuple(config))
            direct_cost, direct_costs = selector._cost_of(
                config, selector._root_ref
            )
            assert job_cost == direct_cost
            assert job_costs.tolist() == direct_costs.tolist()
        finally:
            mcts_mod._WORKER_SELECTOR = None
