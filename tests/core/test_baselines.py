"""Baseline advisor tests (Default / Greedy / QueryLevel)."""

import pytest

from repro.core.baselines import DefaultAdvisor, GreedyAdvisor, QueryLevelAdvisor
from repro.engine.index import IndexDef

READS = [
    f"SELECT id FROM people WHERE community = {i % 10} AND status = 'x'"
    for i in range(30)
]


class TestDefaultAdvisor:
    def test_never_changes_anything(self, people_db):
        advisor = DefaultAdvisor(people_db)
        before = set(d.key for d in people_db.index_defs())
        for sql in READS:
            advisor.observe(sql)
        report = advisor.tune()
        assert report.skipped
        assert {d.key for d in people_db.index_defs()} == before


class TestGreedyAdvisor:
    def test_adds_positive_benefit_indexes(self, people_db):
        advisor = GreedyAdvisor(people_db)
        for sql in READS:
            people_db.execute(sql)
            advisor.observe(sql)
        report = advisor.tune()
        assert any(
            d.columns == ("community", "status") for d in report.created
        )

    def test_never_removes(self, people_db):
        useless = IndexDef(table="people", columns=("name",))
        people_db.create_index(useless)
        advisor = GreedyAdvisor(people_db)
        writes = [
            "INSERT INTO people (id, name, community, temperature, status) "
            f"VALUES ({200000 + i}, 'x', 1, 37.0, 'y')"
            for i in range(30)
        ]
        for sql in writes:
            advisor.observe(sql)
        report = advisor.tune()
        assert report.dropped == []
        assert people_db.has_index(useless)

    def test_budget_stops_selection(self, people_db):
        advisor = GreedyAdvisor(people_db, storage_budget=0)
        for sql in READS:
            advisor.observe(sql)
        report = advisor.tune()
        assert report.created == []

    def test_statement_analysis_counts_every_query(self, people_db):
        advisor = GreedyAdvisor(people_db)
        for sql in READS:
            advisor.observe(sql)
        assert advisor.statements_analyzed == len(READS)

    def test_top_k_vs_hill_climb(self, people_db):
        """Hill-climbing must be at least as good as static top-k."""
        import copy

        def run(marginal):
            from repro.ports.memory import MemoryBackend
            from tests.conftest import people_db as _unused  # noqa: F401

            # Rebuild a fresh equivalent database for isolation.
            db = _fresh_people_db()
            advisor = GreedyAdvisor(db, marginal=marginal)
            for sql in READS:
                db.execute(sql)
                advisor.observe(sql)
            advisor.tune()
            return sum(db.execute(sql).cost for sql in READS)

        assert run(True) <= run(False) * 1.05


def _fresh_people_db():
    import random

    from repro.ports.memory import MemoryBackend
    from repro.engine.schema import ColumnType as T
    from repro.engine.schema import table

    db = MemoryBackend()
    db.create_table(
        table(
            "people",
            [
                ("id", T.INT),
                ("name", T.TEXT),
                ("community", T.INT),
                ("temperature", T.FLOAT),
                ("status", T.TEXT),
            ],
            primary_key=["id"],
        )
    )
    rng = random.Random(7)
    db.load_rows(
        "people",
        [
            (
                i,
                f"person_{i}",
                rng.randrange(20),
                round(36.0 + rng.random() * 5.0, 1),
                rng.choice(("healthy", "suspect", "confirmed")),
            )
            for i in range(2000)
        ],
    )
    db.analyze()
    return db


class TestQueryLevelAdvisor:
    def test_same_final_indexes_as_template_advisor(self, people_db):
        from repro.core.advisor import AutoIndexAdvisor

        query_level_db = _fresh_people_db()
        ql = QueryLevelAdvisor(query_level_db, mcts_iterations=40)
        for sql in READS:
            query_level_db.execute(sql)
            ql.observe(sql)
        ql_report = ql.tune()

        template_db = _fresh_people_db()
        auto = AutoIndexAdvisor(template_db, mcts_iterations=40)
        for sql in READS:
            template_db.execute(sql)
            auto.observe(sql)
        auto_report = auto.tune()

        assert {d.key for d in ql_report.created} == {
            d.key for d in auto_report.created
        }

    def test_analysis_overhead_much_higher(self, people_db):
        ql = QueryLevelAdvisor(people_db)
        for sql in READS:
            ql.observe(sql)
        # 30 queries vs 1 template: >= 96% reduction for templates.
        assert ql.statements_analyzed == len(READS)
