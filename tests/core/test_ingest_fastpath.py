"""Ingest fast path: raw-key cache, coherence, and incremental
diagnosis parity.

The contract under test is *bit-identical outputs*: with the fast
path on, the store's templates, statistics, shard layout, and every
diagnosis decision must equal what the full-parse pipeline produces —
the cache and the incremental caches may only change wall time.
"""

import pytest

from repro.core.advisor import AutoIndexAdvisor
from repro.core.candidates import CandidateGenerator
from repro.core.diagnosis import IndexDiagnosis
from repro.core.templates import TemplateStore
from repro.engine.index import IndexDef
from repro.sql import parse
from repro.sql.lexer import SqlSyntaxError
from repro.sql.normalize import raw_key


def counting_parse():
    """A parse_fn that counts invocations."""
    calls = {"n": 0}

    def parse_fn(sql):
        calls["n"] += 1
        return parse(sql)

    return parse_fn, calls


def template_state(store):
    return {
        t.fingerprint: (
            t.frequency,
            t.window_frequency,
            t.last_seen,
            t.sample_sql,
            t.is_write,
        )
        for t in store.templates()
    }


class TestRawCacheFastPath:
    def test_repeated_shape_skips_parse(self):
        parse_fn, calls = counting_parse()
        store = TemplateStore(parse_fn=parse_fn)
        for i in range(10):
            store.observe(f"SELECT id FROM t WHERE a = {i}")
        assert calls["n"] == 1
        stats = store.raw_cache_stats()
        assert stats == {
            "hits": 9, "misses": 1, "size": 1, "parity_checks": 0,
        }

    def test_disabled_cache_always_parses(self):
        parse_fn, calls = counting_parse()
        store = TemplateStore(raw_cache_size=0, parse_fn=parse_fn)
        for i in range(5):
            store.observe(f"SELECT id FROM t WHERE a = {i}")
        assert calls["n"] == 5
        assert store.raw_cache_stats()["size"] == 0

    def test_cached_state_identical_to_full_parse(self):
        batch = [
            f"SELECT id FROM t WHERE a = {i % 3} AND b = 'v{i}'"
            for i in range(40)
        ] + [
            f"INSERT INTO t (a, b) VALUES ({i}, 'x')" for i in range(10)
        ]
        full = TemplateStore(raw_cache_size=0)
        cached = TemplateStore()
        for sql in batch:
            full.observe(sql)
            cached.observe(sql)
        assert template_state(full) == template_state(cached)
        assert full.shard_stats() == cached.shard_stats()
        assert full.total_observed == cached.total_observed
        assert full.total_new_templates == cached.total_new_templates

    def test_preparsed_statement_bypasses_cache(self):
        store = TemplateStore()
        sql = "SELECT id FROM t WHERE a = 1"
        store.observe(sql, parse(sql))
        stats = store.raw_cache_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["size"] == 0

    def test_error_raised_before_counters_move(self):
        store = TemplateStore()
        with pytest.raises(SqlSyntaxError):
            store.observe("SELECT id FROM t WHERE a = 'oops")
        assert store.total_observed == 0
        assert len(store) == 0

    def test_observe_raw_fast_path(self):
        parse_fn, calls = counting_parse()
        store = TemplateStore(parse_fn=parse_fn)
        sql = "SELECT id FROM t WHERE a = 1"
        for _ in range(4):
            store.observe_raw(sql)
        assert calls["n"] == 1
        # A different literal is a different raw "template" here.
        store.observe_raw("SELECT id FROM t WHERE a = 2")
        assert calls["n"] == 2

    def test_parity_check_trips_on_poisoned_cache(self):
        store = TemplateStore(parity_check_every=1)
        sql_a = "SELECT id FROM t WHERE a = 1"
        sql_b = "SELECT name FROM u WHERE b = 2"
        store.observe(sql_a)
        template_b = store.observe(sql_b)
        # Corrupt the mapping: shape A now resolves to B's template.
        store._raw_cache[raw_key(sql_a)] = template_b.fingerprint
        with pytest.raises(AssertionError, match="parity violation"):
            store.observe(sql_a)


class TestCacheCoherence:
    """Satellite (a): no stale-fingerprint resurrection, ever."""

    def _cache_is_coherent(self, store):
        for key, fingerprint in store._raw_cache.items():
            assert fingerprint in store, (
                f"raw key {key!r} resolves to dead fingerprint "
                f"{fingerprint!r}"
            )

    def test_eviction_past_lru_budget_invalidates(self):
        parse_fn, calls = counting_parse()
        store = TemplateStore(capacity=4, parse_fn=parse_fn)
        shapes = [
            f"SELECT id FROM t{i} WHERE a = {{v}}" for i in range(10)
        ]
        for i, shape in enumerate(shapes):
            store.observe(shape.format(v=i))
        assert len(store) <= 4
        self._cache_is_coherent(store)
        # Re-observe an evicted shape: must take the miss path and
        # create a fresh template, not resurrect the dead fingerprint.
        evicted = shapes[0]
        parses_before = calls["n"]
        template = store.observe(evicted.format(v=99))
        assert calls["n"] == parses_before + 1
        assert template.frequency == 1.0
        self._cache_is_coherent(store)

    def test_raw_cache_respects_its_own_budget(self):
        store = TemplateStore(raw_cache_size=3)
        for i in range(8):
            store.observe(f"SELECT id FROM t{i} WHERE a = 1")
        stats = store.raw_cache_stats()
        assert stats["size"] <= 3
        # Reverse index shrinks with the cache: no unbounded growth.
        assert sum(len(v) for v in store._raw_keys.values()) == (
            stats["size"]
        )
        self._cache_is_coherent(store)

    def test_drift_cleanup_invalidates(self):
        parse_fn, calls = counting_parse()
        store = TemplateStore(parse_fn=parse_fn)
        sql = "SELECT id FROM t WHERE a = 1"
        store.observe(sql)
        removed = store.handle_drift()  # frequency 1 * 0.5 < 1.0: cold
        assert removed == 1
        self._cache_is_coherent(store)
        template = store.observe(sql)
        assert calls["n"] == 2  # re-parsed, not served from the cache
        assert template.frequency == 1.0

    def test_stale_entry_without_remove_is_dropped(self):
        # A store rebuilt from a checkpoint may carry cache entries
        # whose template never existed in this instance.
        store = TemplateStore()
        sql = "SELECT id FROM t WHERE a = 1"
        key = raw_key(sql)
        store._raw_cache[key] = "SELECT ghost FROM nowhere"
        store._raw_keys.setdefault("SELECT ghost FROM nowhere", {})[
            key
        ] = None
        template = store.observe(sql)
        assert template.frequency == 1.0
        self._cache_is_coherent(store)


def ingest(db, diagnosis, store, statements, every=25):
    reports = []
    for i, sql in enumerate(statements, 1):
        db.execute(sql)
        store.observe(sql)
        if i % every == 0:
            reports.append(
                diagnosis.diagnose(
                    protected=[
                        d for d in db.index_defs() if d.unique
                    ]
                )
            )
    return reports


def report_tuple(report):
    return (
        sorted(str(d) for d in report.missing_beneficial),
        sorted(str(d) for d in report.rarely_used),
        sorted(str(d) for d in report.negative),
        report.considered,
        report.regression,
        sorted(str(d) for d in report.auto_revert),
    )


STATEMENTS = [
    f"SELECT id FROM people WHERE community = {i % 7} "
    f"AND status = 's{i % 3}'"
    for i in range(60)
] + [
    "INSERT INTO people (id, name, community, temperature, status) "
    f"VALUES ({50000 + i}, 'n', {i % 7}, 36.6, 'healthy')"
    for i in range(20)
] + [
    f"UPDATE people SET temperature = 37.0 WHERE id = {i}"
    for i in range(20)
]


class TestIncrementalDiagnosisParity:
    def test_reports_identical_to_full_scan(self, people_db, people_db2):
        unused = IndexDef(table="people", columns=("name",))
        for db in (people_db, people_db2):
            db.create_index(unused)

        full_store = TemplateStore(raw_cache_size=0)
        full = IndexDiagnosis(
            people_db,
            full_store,
            CandidateGenerator(people_db),
            incremental=False,
        )
        inc_store = TemplateStore()
        inc = IndexDiagnosis(
            people_db2,
            inc_store,
            CandidateGenerator(people_db2),
            incremental=True,
        )
        full_reports = ingest(
            people_db, full, full_store, STATEMENTS
        )
        inc_reports = ingest(
            people_db2, inc, inc_store, STATEMENTS
        )
        assert len(full_reports) == len(inc_reports) > 0
        for a, b in zip(full_reports, inc_reports):
            assert report_tuple(a) == report_tuple(b)

    def test_quiet_pass_reuses_classification(self, people_db):
        store = TemplateStore()
        diagnosis = IndexDiagnosis(
            people_db, store, CandidateGenerator(people_db)
        )
        for sql in STATEMENTS[:60]:
            people_db.execute(sql)
            store.observe(sql)
        first = diagnosis.diagnose()
        second = diagnosis.diagnose()  # nothing moved in between
        assert report_tuple(first) == report_tuple(second)

    def test_usage_reset_invalidates_classification(self, people_db):
        unused = IndexDef(table="people", columns=("name",))
        people_db.create_index(unused)
        store = TemplateStore()
        diagnosis = IndexDiagnosis(
            people_db, store, CandidateGenerator(people_db)
        )
        for sql in STATEMENTS[:60]:
            people_db.execute(sql)
            store.observe(sql)
        first = diagnosis.diagnose()
        assert unused in first.rarely_used
        people_db.reset_index_usage()
        people_db.execute(STATEMENTS[0])
        # total_queries moved and the epoch moved; the classification
        # must be recomputed, not replayed.
        second = diagnosis.diagnose()
        assert unused in second.rarely_used


class TestCheckpointRoundTrip:
    """Satellite (f): caches are rebuildable, decisions survive."""

    def _drive(self, advisor, db):
        for sql in STATEMENTS:
            db.execute(sql)
            advisor.observe(sql)

    def test_restore_produces_identical_diagnosis(
        self, people_db, people_db2, tmp_path
    ):
        advisor = AutoIndexAdvisor(people_db, seed=3)
        self._drive(advisor, people_db)
        expected = report_tuple(advisor.diagnose())
        advisor.save_state(tmp_path)

        # Crash: a fresh advisor on a twin database restores the
        # checkpoint. The raw cache and diagnosis caches are pure
        # derivatives — never serialized — and must rebuild to the
        # same decisions.
        twin = AutoIndexAdvisor(people_db2, seed=3)
        for sql in STATEMENTS:
            people_db2.execute(sql)
        report = twin.load_state(tmp_path)
        assert report.manifest_found
        assert template_state(twin.store) == template_state(
            advisor.store
        )
        assert report_tuple(twin.diagnose()) == expected
        # The restored store's raw cache starts empty and repopulates
        # through the miss path.
        assert twin.store.raw_cache_stats()["size"] == 0
        twin.store.observe(STATEMENTS[0])
        assert twin.store.raw_cache_stats()["misses"] >= 1

    def test_restored_store_fast_path_still_sound(
        self, people_db, people_db2, tmp_path
    ):
        advisor = AutoIndexAdvisor(people_db, seed=3)
        self._drive(advisor, people_db)
        advisor.save_state(tmp_path)
        twin = AutoIndexAdvisor(people_db2, seed=3)
        twin.load_state(tmp_path)
        # Every observe after restore re-enters through the raw-key
        # cache with parity checks on every hit.
        twin.store.parity_check_every = 1
        for i in range(5):
            twin.store.observe(
                f"SELECT id FROM people WHERE community = {i} "
                f"AND status = 's0'"
            )
        assert twin.store.raw_cache_stats()["parity_checks"] >= 4
