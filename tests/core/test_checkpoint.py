"""Crash-safe checkpointing: torn, corrupt, and partial saves."""

import json

from repro.core.advisor import AutoIndexAdvisor
from repro.core.checkpoint import (
    read_manifest,
    write_checkpoint,
)
from repro.core.estimator import DeepIndexEstimator
from repro.engine.faults import FaultError, FaultPlan

QUERIES = [
    f"SELECT id FROM people WHERE community = {i % 10} AND status = 'x'"
    for i in range(30)
]


def trained_advisor(db, seed=3):
    advisor = AutoIndexAdvisor(db, mcts_iterations=40, seed=seed)
    for sql in QUERIES:
        result = db.execute(sql)
        advisor.observe(sql)
        advisor.record_execution(sql, result.cost)
    advisor.train_estimator()
    return advisor


class TestManifest:
    def test_save_writes_verifiable_manifest(self, people_db, tmp_path):
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        manifest = read_manifest(tmp_path)
        assert manifest is not None
        assert set(manifest["components"]) == {
            "templates.json",
            "safety.json",
            "estimator.npz",
        }
        report = AutoIndexAdvisor(people_db).load_state(tmp_path)
        assert report.manifest_found
        assert all(c.verified for c in report.components)

    def test_second_save_keeps_previous_generation(
        self, people_db, tmp_path
    ):
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        advisor.observe(QUERIES[0])
        advisor.save_state(tmp_path)
        assert (tmp_path / "templates.json.prev").exists()
        assert (tmp_path / "manifest.json.prev").exists()


class TestRoundTrip:
    def test_round_trip_restores_both_components(
        self, people_db, tmp_path
    ):
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        fresh = AutoIndexAdvisor(people_db, mcts_iterations=40, seed=3)
        report = fresh.load_state(tmp_path)
        assert report.loaded("templates.json")
        assert report.loaded("estimator.npz")
        assert len(fresh.store) == len(advisor.store)
        assert isinstance(fresh.estimator.model, DeepIndexEstimator)
        assert fresh.estimator.model.trained


class TestTornCheckpoints:
    def test_truncated_templates_falls_back_to_previous(
        self, people_db, tmp_path
    ):
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        first_generation_size = len(advisor.store)
        advisor.store.observe("SELECT name FROM people WHERE id = 1")
        advisor.save_state(tmp_path)
        # Simulate a torn write of the current generation.
        target = tmp_path / "templates.json"
        target.write_bytes(target.read_bytes()[: 40])

        fresh = AutoIndexAdvisor(people_db)
        report = fresh.load_state(tmp_path)
        assert report.status_of("templates.json") == "fallback"
        assert len(fresh.store) == first_generation_size

    def test_corrupt_estimator_falls_back_to_previous(
        self, people_db, tmp_path
    ):
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        advisor.save_state(tmp_path)  # second generation -> .prev exists
        (tmp_path / "estimator.npz").write_bytes(b"\x00garbage\x00")

        fresh = AutoIndexAdvisor(people_db)
        report = fresh.load_state(tmp_path)
        assert report.status_of("estimator.npz") == "fallback"
        assert isinstance(fresh.estimator.model, DeepIndexEstimator)
        assert fresh.estimator.model.trained

    def test_corrupt_without_previous_is_skipped_not_fatal(
        self, people_db, tmp_path
    ):
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        (tmp_path / "templates.json").write_text("{not json")

        fresh = AutoIndexAdvisor(people_db)
        fresh.observe(QUERIES[0])
        before = len(fresh.store)
        report = fresh.load_state(tmp_path)  # must not raise
        assert report.status_of("templates.json") == "skipped"
        assert len(fresh.store) == before  # in-memory state kept

    def test_missing_manifest_still_loads(self, people_db, tmp_path):
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        (tmp_path / "manifest.json").unlink()
        fresh = AutoIndexAdvisor(people_db)
        report = fresh.load_state(tmp_path)
        assert not report.manifest_found
        assert report.loaded("templates.json")
        # Without a manifest nothing can be checksum-verified.
        assert not any(c.verified for c in report.components)

    def test_corrupt_manifest_ignored(self, people_db, tmp_path):
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        (tmp_path / "manifest.json").write_text("][")
        report = AutoIndexAdvisor(people_db).load_state(tmp_path)
        assert report.loaded("templates.json")


class TestKilledMidSave:
    def test_kill_between_component_writes_loads_last_good(
        self, people_db, tmp_path
    ):
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        good_size = len(advisor.store)

        # Second save dies on its second checkpoint.io visit — after
        # templates.json was renamed to .prev but before the safety
        # and estimator writes; the manifest is never refreshed.
        advisor.observe("SELECT name FROM people WHERE id = 2")
        people_db.faults = FaultPlan(seed=0).add(
            "checkpoint.io", schedule=[2]
        ).injector()
        try:
            advisor.save_state(tmp_path)
        except FaultError:
            pass
        finally:
            people_db.faults = None

        fresh = AutoIndexAdvisor(people_db)
        report = fresh.load_state(tmp_path)  # must not raise
        assert report.loaded("templates.json")
        assert report.loaded("estimator.npz")
        assert len(fresh.store) in (good_size, good_size + 1)
        assert isinstance(fresh.estimator.model, DeepIndexEstimator)

    def test_every_kill_point_leaves_loadable_state(
        self, people_db, tmp_path
    ):
        """Exhaustive: kill the save at each checkpoint.io visit."""
        advisor = trained_advisor(people_db)
        advisor.save_state(tmp_path)
        for visit in (1, 2, 3, 4):
            people_db.faults = FaultPlan(seed=0).add(
                "checkpoint.io", schedule=[visit]
            ).injector()
            try:
                advisor.save_state(tmp_path)
            except FaultError:
                pass
            finally:
                people_db.faults = None
            fresh = AutoIndexAdvisor(people_db)
            report = fresh.load_state(tmp_path)
            assert report.loaded("templates.json"), visit
            assert report.loaded("estimator.npz"), visit


class TestLowLevel:
    def test_write_checkpoint_returns_manifest(self, tmp_path):
        manifest = write_checkpoint(
            tmp_path, {"blob.json": json.dumps({"a": 1}).encode()}
        )
        assert manifest["components"]["blob.json"]["bytes"] > 0
        on_disk = json.loads((tmp_path / "manifest.json").read_text())
        assert on_disk == manifest
