"""Estimator tests: the deep regression, the what-if baseline, caching."""

import numpy as np
import pytest

from repro.core.estimator import (
    BenefitEstimator,
    DeepIndexEstimator,
    WhatIfCostModel,
)
from repro.core.features import CostFeatures
from repro.core.templates import TemplateStore
from repro.engine.index import IndexDef


def synthetic_dataset(n=300, seed=0):
    """Features whose true cost is a weighted sum + noise."""
    rng = np.random.default_rng(seed)
    X = np.zeros((n, 5))
    X[:, 0] = rng.uniform(10, 500, n)       # data cost
    X[:, 3] = rng.integers(0, 2, n)          # is_write
    X[:, 1] = X[:, 3] * rng.uniform(1, 20, n)
    X[:, 2] = X[:, 3] * rng.uniform(1, 10, n)
    X[:, 4] = X[:, 3] * rng.integers(0, 5, n)
    y = 0.9 * X[:, 0] + 2.0 * X[:, 1] + 1.5 * X[:, 2] + rng.normal(
        0, 2, n
    )
    return X, np.maximum(y, 0.1)


class TestDeepIndexEstimator:
    def test_fit_reduces_error_vs_untrained_guess(self):
        X, y = synthetic_dataset()
        model = DeepIndexEstimator(epochs=600)
        metrics = model.fit(X, y)
        assert metrics.samples == len(y)
        assert metrics.mean_q_error < 2.0

    def test_predictions_ordered_with_targets(self):
        X, y = synthetic_dataset()
        model = DeepIndexEstimator(epochs=600)
        model.fit(X, y)
        pred = model.predict(X)
        corr = np.corrcoef(pred, y)[0, 1]
        assert corr > 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DeepIndexEstimator().predict(np.zeros((1, 5)))

    def test_empty_training_set_rejected(self):
        with pytest.raises(ValueError):
            DeepIndexEstimator().fit(np.zeros((0, 5)), np.zeros(0))

    def test_misaligned_shapes_rejected(self):
        with pytest.raises(ValueError):
            DeepIndexEstimator().fit(np.zeros((5, 3)), np.zeros(4))

    def test_deterministic_given_seed(self):
        X, y = synthetic_dataset()
        a = DeepIndexEstimator(seed=5)
        b = DeepIndexEstimator(seed=5)
        a.fit(X, y)
        b.fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_predict_one_matches_batch(self):
        X, y = synthetic_dataset()
        model = DeepIndexEstimator()
        model.fit(X, y)
        features = CostFeatures(
            data_cost=100.0, io_cost=5.0, cpu_cost=2.0,
            is_write=True, num_affected_indexes=2,
        )
        single = model.predict_one(features)
        batch = model.predict(features.as_array()[None, :])[0]
        assert single == pytest.approx(batch)

    def test_nine_fold_cross_validation(self):
        X, y = synthetic_dataset(n=270)
        model = DeepIndexEstimator(epochs=300)
        folds = model.cross_validate(X, y, folds=9)
        assert len(folds) == 9
        assert sum(f.samples for f in folds) == 270
        assert all(f.mean_q_error < 4.0 for f in folds)

    def test_cv_needs_two_folds(self):
        with pytest.raises(ValueError):
            DeepIndexEstimator().cross_validate(
                np.zeros((1, 5)), np.zeros(1), folds=2
            )

    def test_constant_feature_does_not_crash(self):
        X, y = synthetic_dataset()
        X[:, 4] = 7.0  # zero variance column
        DeepIndexEstimator(epochs=50).fit(X, y)


class TestWhatIfModel:
    def test_sum_of_components(self):
        model = WhatIfCostModel()
        features = CostFeatures(
            data_cost=10.0, io_cost=1.0, cpu_cost=2.0,
            is_write=True, num_affected_indexes=1,
        )
        assert model.predict_one(features) == 13.0

    def test_batch_predict(self):
        model = WhatIfCostModel()
        X = np.array([[1.0, 2.0, 3.0, 1.0, 1.0], [5.0, 0.0, 0.0, 0.0, 0.0]])
        assert list(model.predict(X)) == [6.0, 5.0]


class TestBenefitEstimator:
    def make_templates(self, queries):
        store = TemplateStore()
        for sql in queries:
            store.observe(sql)
        return store.templates()

    def test_benefit_positive_for_useful_index(self, people_db):
        estimator = BenefitEstimator(people_db)
        templates = self.make_templates(
            ["SELECT id FROM people WHERE community = 1 AND status = 'x'"]
            * 5
        )
        existing = people_db.index_defs()
        config = existing + [
            IndexDef(table="people", columns=("community", "status"))
        ]
        assert estimator.benefit(templates, existing, config) > 0

    def test_benefit_negative_for_write_penalised_index(self, people_db):
        estimator = BenefitEstimator(people_db)
        templates = self.make_templates(
            [
                "INSERT INTO people (id, name, community, temperature, "
                f"status) VALUES ({i}, 'x', 1, 37.0, 'y')"
                for i in range(20)
            ]
        )
        existing = people_db.index_defs()
        config = existing + [
            IndexDef(table="people", columns=("temperature",))
        ]
        assert estimator.benefit(templates, existing, config) < 0

    def test_cache_hit_skips_estimate_call(self, people_db):
        estimator = BenefitEstimator(people_db)
        templates = self.make_templates(
            ["SELECT id FROM people WHERE community = 1"]
        )
        config = people_db.index_defs()
        estimator.query_cost(templates[0], config)
        calls = estimator.estimate_calls
        estimator.query_cost(templates[0], config)
        assert estimator.estimate_calls == calls

    def test_cache_keyed_on_relevant_indexes_only(self, people_db):
        # Create a second table whose indexes are irrelevant here.
        from repro.engine.schema import ColumnType as T
        from repro.engine.schema import table

        people_db.create_table(table("other", [("x", T.INT)]))
        people_db.analyze("other")
        estimator = BenefitEstimator(people_db)
        templates = self.make_templates(
            ["SELECT id FROM people WHERE community = 1"]
        )
        base_config = people_db.index_defs()
        estimator.query_cost(templates[0], base_config)
        calls = estimator.estimate_calls
        extended = base_config + [IndexDef(table="other", columns=("x",))]
        estimator.query_cost(templates[0], extended)
        assert estimator.estimate_calls == calls  # cache hit

    def test_workload_cost_weights_by_window(self, people_db):
        estimator = BenefitEstimator(people_db)
        store = TemplateStore()
        for _ in range(10):
            store.observe("SELECT id FROM people WHERE community = 1")
        templates = store.templates()
        heavy = estimator.workload_cost(templates, people_db.index_defs())
        store.begin_tuning_window()
        light = estimator.workload_cost(templates, people_db.index_defs())
        assert heavy > light

    def test_record_and_train(self, people_db):
        estimator = BenefitEstimator(people_db)
        for i in range(30):
            sql = f"SELECT id FROM people WHERE community = {i % 10}"
            result = people_db.execute(sql)
            estimator.record_execution(
                people_db.parse_statement(sql), result.cost
            )
        metrics = estimator.train()
        assert isinstance(estimator.model, DeepIndexEstimator)
        assert metrics.samples == 30

    def test_train_without_history_raises(self, people_db):
        with pytest.raises(RuntimeError):
            BenefitEstimator(people_db).train()

    def test_trained_model_beats_or_matches_naive_on_history(self, people_db):
        """The learned weights should fit measured costs at least as
        well as the static sum (the paper's motivation for Section V-B)."""
        estimator = BenefitEstimator(people_db)
        people_db.create_index(
            IndexDef(table="people", columns=("community",))
        )
        queries = []
        for i in range(40):
            queries.append(f"SELECT id FROM people WHERE community = {i % 20}")
            queries.append(
                "INSERT INTO people (id, name, community, temperature, "
                f"status) VALUES ({10000 + i}, 'x', {i % 20}, 37.0, 'y')"
            )
        for sql in queries:
            result = people_db.execute(sql)
            estimator.record_execution(
                people_db.parse_statement(sql), result.cost
            )
        X, y = estimator.training_matrix()
        naive_error = np.mean(np.abs(WhatIfCostModel().predict(X) - y))
        estimator.train()
        learned_error = np.mean(np.abs(estimator.model.predict(X) - y))
        assert learned_error <= naive_error * 1.05
