"""Daemon-vs-library parity: the serve layer's headline guarantee.

A single-tenant stream pumped through the daemon's scheduler must
produce bit-identical TuningReports, template-store state, applied
index sets, and benefit-ledger claims to calling the library
``tune()`` path at the same stream offsets — on both backends.
"""

from __future__ import annotations

import pytest

from repro.serve.config import make_generator, parse_tenant_spec
from repro.serve.daemon import TuningDaemon
from repro.serve.parity import (
    checkpoint_surface,
    compare_surfaces,
    replay_library_path,
)

STREAM = 80
ROUND_EVERY = 40


def tenant_spec(backend: str):
    return parse_tenant_spec(
        f"alpha,backend={backend},workload=banking,"
        f"round-every={ROUND_EVERY},mcts-iterations=20"
    )


def daemon_surface(daemon: TuningDaemon, tenant_id: str) -> dict:
    runtime = daemon.registry.get(tenant_id)
    return {
        "reports": runtime.normalized_reports(),
        "templates": runtime.advisor.store.to_dict(),
        "applied_indexes": runtime.applied_index_keys(),
        "ledger": runtime.advisor.safety.ledger.to_dict(),
    }


def banking_statements(count: int = STREAM):
    generator = make_generator("banking", seed=5)
    return [q.sql for q in generator.queries(count, seed=5)]


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_daemon_stream_matches_library_path(backend):
    spec = tenant_spec(backend)
    daemon = TuningDaemon(workers=0)
    daemon.add_tenant(spec)
    result = daemon.ingest("alpha", banking_statements())
    assert result["rounds_run"] == STREAM // ROUND_EVERY

    library = replay_library_path(spec, STREAM)
    mismatches = compare_surfaces(
        daemon_surface(daemon, "alpha"), library
    )
    assert mismatches == []
    # The comparison is not vacuous: rounds ran and left state.
    assert len(library["reports"]) == STREAM // ROUND_EVERY
    assert library["templates"]["templates"] or library["templates"]


def test_checkpointed_surface_matches_library_path(tmp_path):
    """The offline ``verify`` path: parity holds when the daemon
    surface is read back from the tenant's checkpoint namespace."""
    spec = tenant_spec("memory")
    daemon = TuningDaemon(checkpoint_root=tmp_path, workers=0)
    daemon.add_tenant(spec)
    daemon.ingest("alpha", banking_statements())
    daemon.shutdown()

    surface = checkpoint_surface(tmp_path, "alpha")
    assert surface is not None
    assert int(surface["counters"]["ingested"]) == STREAM
    library = replay_library_path(spec, STREAM)
    assert compare_surfaces(surface, library) == []


def test_round_reports_are_timing_free():
    """Normalized reports must not leak wall-clock fields — that is
    what makes them comparable across runs."""
    spec = tenant_spec("memory")
    daemon = TuningDaemon(workers=0)
    daemon.add_tenant(spec)
    daemon.ingest("alpha", banking_statements(ROUND_EVERY))
    (report,) = daemon_surface(daemon, "alpha")["reports"]
    assert "elapsed_seconds" not in report
    assert "search" not in report


def test_two_daemon_runs_are_identical():
    """Determinism of the daemon path itself: same stream, same
    spec, bit-identical surfaces."""
    spec = tenant_spec("memory")
    surfaces = []
    for _ in range(2):
        daemon = TuningDaemon(workers=0)
        daemon.add_tenant(spec)
        daemon.ingest("alpha", banking_statements())
        surfaces.append(daemon_surface(daemon, "alpha"))
    assert surfaces[0] == surfaces[1]
