"""Tenant registry: isolation, lifecycle counters, restore."""

from __future__ import annotations

import pytest

from repro.core import checkpoint
from repro.serve.config import make_generator, parse_tenant_spec
from repro.serve.registry import TenantRegistry


def banking_statements(count):
    generator = make_generator("banking", seed=5)
    return [q.sql for q in generator.queries(count, seed=5)]


def test_duplicate_tenant_id_rejected():
    registry = TenantRegistry()
    registry.create(parse_tenant_spec("alpha,workload=banking"))
    with pytest.raises(ValueError, match="already exists"):
        registry.create(parse_tenant_spec("alpha,workload=banking"))


def test_unknown_tenant_lookup():
    registry = TenantRegistry()
    with pytest.raises(KeyError, match="unknown tenant"):
        registry.get("ghost")


def test_tenants_pin_different_backends_in_one_registry():
    registry = TenantRegistry()
    mem = registry.create(
        parse_tenant_spec("m,backend=memory,workload=banking")
    )
    sql = registry.create(
        parse_tenant_spec("s,backend=sqlite,seed=11,workload=banking")
    )
    assert mem.backend.spec.kind == "memory"
    assert sql.backend.spec.kind == "sqlite"
    assert sql.backend.spec.seed == 11
    assert type(mem.backend) is not type(sql.backend)
    assert registry.tenant_ids() == ["m", "s"]


def test_capacity_flows_from_spec_to_template_store():
    registry = TenantRegistry()
    runtime = registry.create(
        parse_tenant_spec("a,workload=banking,capacity=32")
    )
    assert runtime.advisor.store.capacity == 32


def test_safety_controllers_are_independent():
    registry = TenantRegistry()
    one = registry.create(
        parse_tenant_spec("one,workload=banking,regret-bound=100")
    )
    two = registry.create(
        parse_tenant_spec("two,workload=banking,regret-bound=100")
    )
    assert one.advisor.safety is not two.advisor.safety
    assert one.advisor.safety.ledger is not two.advisor.safety.ledger


def test_save_creates_tenant_namespace(tmp_path):
    registry = TenantRegistry(checkpoint_root=tmp_path)
    runtime = registry.create(
        parse_tenant_spec(
            "alpha,workload=banking,round-every=40,mcts-iterations=20"
        )
    )
    for sql in banking_statements(40):
        runtime.session.ingest(sql)
    runtime.session.run_round()
    assert registry.save_all() == 1
    assert checkpoint.list_tenant_namespaces(tmp_path) == ["alpha"]
    namespace = checkpoint.tenant_namespace(tmp_path, "alpha")
    assert (namespace / "serve.json").exists()
    assert (namespace / "templates.json").exists()


def test_restore_resumes_lifecycle_counters(tmp_path):
    """A restarted registry must not re-fire rounds for statements
    already tuned against."""
    spec = parse_tenant_spec(
        "alpha,workload=banking,round-every=40,mcts-iterations=20"
    )
    registry = TenantRegistry(checkpoint_root=tmp_path)
    runtime = registry.create(spec)
    for sql in banking_statements(40):
        runtime.session.ingest(sql)
    runtime.session.run_round()
    registry.save_all()

    fresh = TenantRegistry(checkpoint_root=tmp_path)
    restored = fresh.create(spec)
    assert restored.session.ingested == 40
    assert restored.session.rounds_completed == 1
    assert restored.session.pending_statements() == 0
    assert not restored.session.due()
    # The restored template store carries the observed workload.
    assert len(restored.advisor.store) == len(runtime.advisor.store)
