"""Daemon behaviour: admission, budgets, skewed multi-tenant load."""

from __future__ import annotations

import pytest

from repro.serve.config import make_generator, parse_tenant_spec
from repro.serve.daemon import TuningDaemon


def banking_statements(count, seed=5):
    generator = make_generator("banking", seed=5)
    return [q.sql for q in generator.queries(count, seed=seed)]


def test_round_budget_limits_rounds():
    daemon = TuningDaemon(workers=0)
    daemon.add_tenant(
        parse_tenant_spec(
            "a,workload=banking,round-every=40,round-budget=1,"
            "mcts-iterations=20"
        )
    )
    result = daemon.ingest("a", banking_statements(120))
    assert result["rounds_run"] == 1
    assert result["round_budget_remaining"] == 0
    assert daemon.status()["rounds_completed"] == 1


def test_round_log_is_in_admission_order():
    daemon = TuningDaemon(workers=0)
    for tenant in ("a", "b"):
        daemon.add_tenant(
            parse_tenant_spec(
                f"{tenant},workload=banking,round-every=20,"
                "round-budget=1,mcts-iterations=20"
            )
        )
    statements = banking_statements(20)
    daemon.ingest("a", statements)
    daemon.ingest("b", statements)
    log = daemon.round_log()
    assert [(r["tenant_id"], r["seq"]) for r in log] == [
        ("a", 0),
        ("b", 1),
    ]
    assert daemon.round_log("b") == [log[1]]


def test_threaded_workers_complete_rounds():
    """Background workers drain the scheduler; shutdown drains what
    is queued and checkpoints."""
    daemon = TuningDaemon(workers=2, max_concurrent_rounds=2)
    for tenant in ("a", "b"):
        daemon.add_tenant(
            parse_tenant_spec(
                f"{tenant},workload=banking,round-every=30,"
                "round-budget=1,mcts-iterations=20"
            )
        )
    daemon.start()
    statements = banking_statements(30)
    daemon.ingest("a", statements)
    daemon.ingest("b", statements)
    result = daemon.shutdown(drain=True)
    assert result["rounds_completed"] == 2
    for tenant in ("a", "b"):
        runtime = daemon.registry.get(tenant)
        assert runtime.session.rounds_completed == 1


def test_shutdown_without_drain_leaves_queue():
    daemon = TuningDaemon(workers=0)
    daemon.add_tenant(
        parse_tenant_spec(
            "a,workload=banking,round-every=10,mcts-iterations=20"
        )
    )
    runtime = daemon.registry.get("a")
    # Make the tenant due without letting inline pump fire: bypass
    # ingest and offer manually.
    for sql in banking_statements(10):
        runtime.session.ingest(sql)
    daemon.scheduler.offer("a")
    result = daemon.shutdown(drain=False)
    assert result["rounds_completed"] == 0
    assert daemon.scheduler.queued() == ["a"]


def test_review_flow_through_daemon():
    """A review-mode tenant queues instead of applying; the daemon's
    review op records the verdict and applies it."""
    daemon = TuningDaemon(workers=0)
    daemon.add_tenant(
        parse_tenant_spec(
            "a,workload=banking,round-every=40,apply-mode=review,"
            "mcts-iterations=20"
        )
    )
    daemon.ingest("a", banking_statements(40))
    pending = daemon.recommendations("a")
    if not pending:  # the round may legitimately find nothing
        pytest.skip("round produced no recommendation to review")
    before = set(daemon.registry.get("a").applied_index_keys())
    verdict = daemon.resolve_review(
        "a", pending[0]["rec_id"], accept=True, note="looks right"
    )
    assert verdict["status"] == "accepted"
    after = set(daemon.registry.get("a").applied_index_keys())
    assert after != before


def test_skewed_tenants_bounded_memory_and_independent_budgets():
    """The N-tenant skew scenario: 50 tenants, one of them (the 1%)
    receiving 90% of traffic.  Per-tenant memory stays bounded by
    the template-store capacity, budgets and regret ledgers are
    enforced per tenant, and cold tenants are untouched by the hot
    tenant's rounds."""
    CAPACITY = 32
    N = 50
    daemon = TuningDaemon(workers=0)
    for i in range(N):
        daemon.add_tenant(
            parse_tenant_spec(
                f"t{i:02d},workload=banking,capacity={CAPACITY},"
                "round-every=300,round-budget=2,mcts-iterations=20"
            )
        )

    hot = "t00"
    hot_stream = banking_statements(900, seed=5)
    cold_stream = banking_statements(2, seed=6)
    daemon.ingest(hot, hot_stream)
    for i in range(1, N):
        daemon.ingest(f"t{i:02d}", cold_stream)

    status = daemon.status()
    # Only the hot tenant became due; its budget capped it at 2.
    assert status["rounds_completed"] == 2
    hot_runtime = daemon.registry.get(hot)
    assert hot_runtime.session.rounds_completed == 2
    assert hot_runtime.session.budget.exhausted()

    for i in range(N):
        runtime = daemon.registry.get(f"t{i:02d}")
        # Memory bound: the store never exceeds its capacity even
        # under 90%-of-traffic pressure.
        assert len(runtime.advisor.store) <= CAPACITY
        if runtime.tenant_id != hot:
            assert runtime.session.rounds_completed == 0
            assert not runtime.session.budget.exhausted()
            # Independent ledgers: cold tenants carry no claims from
            # the hot tenant's applies.
            assert runtime.advisor.safety.ledger.to_dict()["arms"] == []
    # Fifty advisors coexist with distinct template stores.
    stores = {
        id(daemon.registry.get(f"t{i:02d}").advisor.store)
        for i in range(N)
    }
    assert len(stores) == N
