"""Admission control: fairness, dedup, bounds, determinism."""

from __future__ import annotations

import pytest

from repro.serve.scheduler import RoundScheduler


def test_fifo_admission_order():
    sched = RoundScheduler(max_concurrent=3)
    for tenant in ("c", "a", "b"):
        assert sched.offer(tenant)
    admitted = [sched.admit().tenant_id for _ in range(3)]
    assert admitted == ["c", "a", "b"]


def test_offer_dedups_queued_and_running():
    sched = RoundScheduler()
    assert sched.offer("a")
    assert not sched.offer("a")  # already queued
    job = sched.admit()
    assert not sched.offer("a")  # running
    sched.complete(job)
    assert sched.offer("a")  # free again


def test_max_concurrent_bounds_running_rounds():
    sched = RoundScheduler(max_concurrent=2)
    for tenant in ("a", "b", "c"):
        sched.offer(tenant)
    first = sched.admit()
    second = sched.admit()
    assert first and second
    assert sched.admit() is None  # at the cap
    sched.complete(first)
    third = sched.admit()
    assert third.tenant_id == "c"


def test_requeue_goes_to_the_tail():
    """A still-due tenant waits behind every other ready tenant —
    the hot tenant cannot starve cold ones."""
    sched = RoundScheduler()
    sched.offer("hot")
    job = sched.admit()
    sched.offer("cold1")
    sched.offer("cold2")
    sched.complete(job, requeue=True)
    order = []
    while True:
        nxt = sched.admit()
        if nxt is None:
            break
        order.append(nxt.tenant_id)
        sched.complete(nxt)
    assert order == ["cold1", "cold2", "hot"]


def test_sequence_numbers_total_order():
    sched = RoundScheduler(max_concurrent=10)
    for tenant in ("a", "b", "c"):
        sched.offer(tenant)
    seqs = [sched.admit().seq for _ in range(3)]
    assert seqs == [0, 1, 2]


def test_virtual_clock_never_wall_clock():
    """Replaying the same event sequence yields identical
    timestamps — scheduling time is virtual, not wall time."""

    def run():
        sched = RoundScheduler()
        stamps = []
        for tenant in ("a", "b"):
            sched.offer(tenant)
        while True:
            job = sched.admit()
            if job is None:
                break
            stamps.append((job.tenant_id, job.offered_at, job.admitted_at))
            sched.complete(job)
        return stamps, sched.snapshot()["virtual_time"]

    assert run() == run()


def test_complete_rejects_stale_job():
    sched = RoundScheduler()
    sched.offer("a")
    job = sched.admit()
    sched.complete(job)
    with pytest.raises(ValueError):
        sched.complete(job)


def test_forget_drops_queued_tenant():
    sched = RoundScheduler()
    sched.offer("a")
    sched.offer("b")
    sched.forget("a")
    assert sched.queued() == ["b"]
    sched.forget("missing")  # no-op


def test_rejects_nonpositive_concurrency():
    with pytest.raises(ValueError):
        RoundScheduler(max_concurrent=0)
