"""Control socket: every op round-trips over the Unix socket."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.config import make_generator, parse_tenant_spec
from repro.serve.daemon import TuningDaemon
from repro.serve.server import DaemonClient, DaemonServer


@pytest.fixture
def served(tmp_path):
    """A daemon with one tenant serving on a temp Unix socket."""
    daemon = TuningDaemon(
        checkpoint_root=tmp_path / "ckpt", workers=1
    )
    daemon.add_tenant(
        parse_tenant_spec(
            "alpha,workload=banking,round-every=40,mcts-iterations=20"
        )
    )
    socket_path = tmp_path / "control.sock"
    server = DaemonServer(daemon, str(socket_path))
    thread = threading.Thread(
        target=server.serve_forever, daemon=True
    )
    thread.start()
    client = DaemonClient(str(socket_path), timeout=120.0)
    deadline = 200
    while deadline and not client.ping():
        deadline -= 1
        time.sleep(0.05)
    assert deadline, "daemon socket never came up"
    yield daemon, client
    server.close()
    thread.join(timeout=5.0)


def test_socket_round_trip(served):
    daemon, client = served
    generator = make_generator("banking", seed=5)
    statements = [q.sql for q in generator.queries(40, seed=5)]

    result = client.ingest("alpha", statements)
    assert result["ingested"] == 40

    # Poll status until the background worker finishes the round.
    for _ in range(1200):
        status = client.status()
        if status["rounds_completed"] >= 1:
            break
        time.sleep(0.05)
    assert status["rounds_completed"] == 1
    assert "alpha" in status["tenants"]

    rounds = client.rounds("alpha")["rounds"]
    assert len(rounds) == 1
    assert rounds[0]["tenant_id"] == "alpha"
    assert not rounds[0]["skipped"]

    recommendations = client.recommend("alpha")["recommendations"]
    assert isinstance(recommendations, list)

    spec = parse_tenant_spec(
        "beta,backend=sqlite,workload=banking,round-every=500"
    )
    added = client.add_tenant(spec.to_dict())
    assert added["status"]["tenant_id"] == "beta"
    assert added["status"]["backend"] == "sqlite"

    result = client.shutdown()
    assert result["rounds_completed"] == 1
    assert sorted(result["tenants"]) == ["alpha", "beta"]


def test_unknown_op_is_an_error_not_a_crash(served):
    daemon, client = served
    with pytest.raises(RuntimeError, match="unknown op"):
        client.call({"op": "frobnicate"})
    # The server survives and keeps answering.
    assert client.ping()
