"""Cross-cutting property-based tests over the whole stack.

These complement the per-module property tests: random queries over a
random dataset must (1) plan with non-negative estimates, (2) return
identical results with and without indexes, and (3) keep index
structures consistent with the heap under random write mixes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ports.memory import MemoryBackend
from repro.engine.index import IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table
from repro.sql import parse
from repro.sql.fingerprint import fingerprint, parameterize


def fresh_db(indexed: bool) -> MemoryBackend:
    db = MemoryBackend()
    db.create_table(
        table(
            "t",
            [("id", T.INT), ("a", T.INT), ("b", T.INT), ("c", T.TEXT)],
            primary_key=["id"],
        )
    )
    rng = random.Random(99)
    db.load_rows(
        "t",
        [
            (i, rng.randrange(30), rng.randrange(100), f"v{i % 7}")
            for i in range(1200)
        ],
    )
    if indexed:
        db.create_index(IndexDef(table="t", columns=("a", "b")))
        db.create_index(IndexDef(table="t", columns=("b",)))
        db.create_index(IndexDef(table="t", columns=("c", "a")))
    db.analyze()
    return db


_DBS = {}


def get_db(indexed: bool) -> MemoryBackend:
    if indexed not in _DBS:
        _DBS[indexed] = fresh_db(indexed)
    return _DBS[indexed]


@st.composite
def random_predicates(draw):
    """Random WHERE clauses over t(a, b, c)."""
    atoms = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(["eq_a", "range_b", "eq_c", "in_a",
                                     "between_b"]))
        if kind == "eq_a":
            atoms.append(f"a = {draw(st.integers(-5, 35))}")
        elif kind == "range_b":
            op = draw(st.sampled_from(["<", "<=", ">", ">="]))
            atoms.append(f"b {op} {draw(st.integers(-10, 110))}")
        elif kind == "eq_c":
            atoms.append(f"c = 'v{draw(st.integers(0, 9))}'")
        elif kind == "in_a":
            values = draw(
                st.lists(st.integers(0, 30), min_size=1, max_size=4)
            )
            atoms.append(f"a IN ({', '.join(map(str, values))})")
        else:
            lo = draw(st.integers(0, 90))
            atoms.append(f"b BETWEEN {lo} AND {lo + draw(st.integers(0, 20))}")
    connective = draw(st.sampled_from([" AND ", " OR "]))
    return connective.join(atoms)


class TestQueryEquivalence:
    @given(random_predicates())
    @settings(max_examples=60, deadline=None)
    def test_indexes_never_change_results(self, predicate):
        sql = f"SELECT id FROM t WHERE {predicate}"
        plain = sorted(get_db(False).execute(sql).rows)
        indexed = sorted(get_db(True).execute(sql).rows)
        assert plain == indexed

    @given(random_predicates())
    @settings(max_examples=40, deadline=None)
    def test_count_agrees_with_rows(self, predicate):
        db = get_db(True)
        rows = db.execute(f"SELECT id FROM t WHERE {predicate}").rowcount
        count = db.execute(
            f"SELECT count(*) FROM t WHERE {predicate}"
        ).scalar
        assert rows == count

    @given(random_predicates())
    @settings(max_examples=40, deadline=None)
    def test_plans_have_sane_estimates(self, predicate):
        db = get_db(True)
        cost, plan = db.estimate_cost(f"SELECT id FROM t WHERE {predicate}")
        assert cost >= 0
        assert plan.est_rows >= 0


class TestFingerprintProperties:
    @given(random_predicates())
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_idempotent(self, predicate):
        stmt = parse(f"SELECT id FROM t WHERE {predicate}")
        fp = fingerprint(stmt)
        assert fingerprint(parse(fp)) == fp

    @given(random_predicates())
    @settings(max_examples=40, deadline=None)
    def test_parameterize_extracts_all_literals(self, predicate):
        stmt = parse(f"SELECT id FROM t WHERE {predicate}")
        parameterized = parameterize(stmt)
        # The template must contain no remaining literal constants
        # (placeholders only).
        from repro.sql import ast

        for node in ast.walk(parameterized.statement):
            assert not isinstance(node, ast.Literal)


class TestWriteConsistency:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 40)),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_random_write_mix_keeps_index_consistent(self, operations):
        db = MemoryBackend()
        db.create_table(
            table(
                "w",
                [("id", T.INT), ("g", T.INT)],
                primary_key=["id"],
            )
        )
        db.create_index(IndexDef(table="w", columns=("g",)))
        db.load_rows("w", [(i, i % 5) for i in range(40)])
        db.analyze()
        shadow = {i: i % 5 for i in range(40)}
        next_id = 1000
        for action, value in operations:
            if action == 0:  # insert
                db.execute(
                    f"INSERT INTO w (id, g) VALUES ({next_id}, {value % 7})"
                )
                shadow[next_id] = value % 7
                next_id += 1
            elif action == 1 and shadow:  # update some existing row
                target = sorted(shadow)[value % len(shadow)]
                db.execute(
                    f"UPDATE w SET g = {value % 7} WHERE id = {target}"
                )
                shadow[target] = value % 7
            elif shadow:  # delete
                target = sorted(shadow)[value % len(shadow)]
                db.execute(f"DELETE FROM w WHERE id = {target}")
                del shadow[target]
        # Index-served group counts must equal the shadow model.
        for g in range(7):
            got = db.execute(
                f"SELECT count(*) FROM w WHERE g = {g}"
            ).scalar
            want = sum(1 for v in shadow.values() if v == g)
            assert got == want

        index = db.catalog.get_index(IndexDef(table="w", columns=("g",)))
        index.tree.check_invariants()
        assert index.entry_count == len(shadow)


class TestEstimationCalibration:
    """Optimizer estimates must track executor reality.

    These are the loose-but-meaningful bounds that keep what-if tuning
    honest: gross miscalibration here would silently corrupt every
    benefit estimate the advisor produces.
    """

    @given(random_predicates())
    @settings(max_examples=30, deadline=None)
    def test_row_estimates_track_actuals(self, predicate):
        db = get_db(True)
        sql = f"SELECT id FROM t WHERE {predicate}"
        _cost, plan = db.estimate_cost(sql)
        actual = db.execute(sql).rowcount
        est = plan.est_rows
        # Within a generous band: estimates may be off, but not by
        # orders of magnitude on simple single-table predicates.
        assert est <= max(actual * 12, 120)
        if actual > 100:
            assert est >= actual / 12

    @given(random_predicates())
    @settings(max_examples=30, deadline=None)
    def test_cost_estimates_track_actuals(self, predicate):
        db = get_db(True)
        sql = f"SELECT id FROM t WHERE {predicate}"
        est_cost, _plan = db.estimate_cost(sql)
        actual_cost = db.execute(sql).cost
        assert est_cost <= actual_cost * 15 + 50
        assert actual_cost <= est_cost * 15 + 50
