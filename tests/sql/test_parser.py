"""Parser unit tests: statement structure and round-tripping."""

import pytest

from repro.sql import ast, parse
from repro.sql.lexer import SqlSyntaxError


class TestSelectBasics:
    def test_simple_select(self):
        stmt = parse("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[0].expr == ast.ColumnRef(column="a")
        assert stmt.sources == (ast.TableRef(name="t"),)

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expr == ast.Star(table="t")

    def test_multiple_items_with_aliases(self):
        stmt = parse("SELECT a AS x, b y, c FROM t")
        assert [i.alias for i in stmt.items] == ["x", "y", None]

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct
        assert not parse("SELECT a FROM t").distinct

    def test_table_alias_forms(self):
        explicit = parse("SELECT a FROM t AS u")
        implicit = parse("SELECT a FROM t u")
        assert explicit.sources[0].binding == "u"
        assert implicit.sources[0].binding == "u"

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 7").limit == 7

    def test_group_by_and_having(self):
        stmt = parse(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert stmt.group_by == (ast.ColumnRef(column="a"),)
        assert isinstance(stmt.having, ast.Comparison)

    def test_order_by_directions(self):
        stmt = parse("SELECT a FROM t ORDER BY a, b DESC, c ASC")
        assert [o.descending for o in stmt.order_by] == [False, True, False]


class TestJoins:
    def test_comma_join(self):
        stmt = parse("SELECT a FROM t1, t2 WHERE t1.x = t2.y")
        assert len(stmt.sources) == 2
        assert isinstance(stmt.where, ast.Comparison)

    def test_explicit_join_folds_to_where(self):
        stmt = parse("SELECT a FROM t1 JOIN t2 ON t1.x = t2.y")
        assert len(stmt.sources) == 2
        assert isinstance(stmt.where, ast.Comparison)

    def test_join_on_merges_with_where(self):
        stmt = parse(
            "SELECT a FROM t1 JOIN t2 ON t1.x = t2.y WHERE t1.z = 1"
        )
        assert isinstance(stmt.where, ast.And)
        assert len(stmt.where.items) == 2

    def test_inner_join_keyword(self):
        stmt = parse("SELECT a FROM t1 INNER JOIN t2 ON t1.x = t2.y")
        assert len(stmt.sources) == 2

    def test_three_way_join(self):
        stmt = parse(
            "SELECT a FROM t1 JOIN t2 ON t1.x = t2.x "
            "JOIN t3 ON t2.y = t3.y"
        )
        assert len(stmt.sources) == 3
        assert len(stmt.where.items) == 2

    def test_derived_table(self):
        stmt = parse(
            "SELECT a FROM (SELECT b FROM t WHERE b > 1) AS sub"
        )
        src = stmt.sources[0]
        assert isinstance(src, ast.SubquerySource)
        assert src.alias == "sub"
        assert isinstance(src.select, ast.Select)


class TestPredicates:
    def test_comparison_operators_normalised(self):
        stmt = parse("SELECT a FROM t WHERE a != 1")
        assert stmt.where.op == "<>"

    def test_between(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.Between)

    def test_in_list(self):
        stmt = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_in_subquery(self):
        stmt = parse(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b > 1)"
        )
        assert isinstance(stmt.where, ast.InSubquery)

    def test_like(self):
        stmt = parse("SELECT a FROM t WHERE name LIKE 'ab%'")
        assert isinstance(stmt.where, ast.Like)

    def test_is_null_and_is_not_null(self):
        assert not parse(
            "SELECT a FROM t WHERE a IS NULL"
        ).where.negated
        assert parse("SELECT a FROM t WHERE a IS NOT NULL").where.negated

    def test_and_or_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, ast.Or)
        assert isinstance(stmt.where.items[1], ast.And)

    def test_parenthesised_or_binds_tighter(self):
        stmt = parse("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(stmt.where, ast.And)

    def test_not(self):
        stmt = parse("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.Not)

    def test_scalar_subquery_in_where(self):
        stmt = parse(
            "SELECT a FROM t WHERE a > (SELECT max(b) FROM u)"
        )
        assert isinstance(stmt.where.right, ast.ScalarSubquery)


class TestExpressions:
    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus_folds_literal(self):
        stmt = parse("SELECT a FROM t WHERE a = -5")
        assert stmt.where.right == ast.Literal(value=-5)

    def test_function_call(self):
        stmt = parse("SELECT sum(amount) FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.FuncCall)
        assert expr.name == "sum"
        assert expr.is_aggregate

    def test_count_star(self):
        stmt = parse("SELECT count(*) FROM t")
        assert isinstance(stmt.items[0].expr.args[0], ast.Star)

    def test_count_distinct(self):
        stmt = parse("SELECT count(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct

    def test_null_true_false_literals(self):
        stmt = parse("SELECT a FROM t WHERE a = NULL OR b = TRUE OR c = FALSE")
        values = [item.right.value for item in stmt.where.items]
        assert values == [None, True, False]

    def test_qualified_column(self):
        stmt = parse("SELECT t.a FROM t")
        assert stmt.items[0].expr == ast.ColumnRef(column="a", table="t")


class TestWrites:
    def test_insert_single_row(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, ast.Insert)
        assert stmt.columns == ("a", "b")
        assert stmt.rows[0][0] == ast.Literal(value=1)

    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_insert_width_mismatch_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2
        assert isinstance(stmt.assignments[1].value, ast.Arith)

    def test_update_without_where(self):
        assert parse("UPDATE t SET a = 1").where is None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_is_write_helper(self):
        assert ast.is_write(parse("INSERT INTO t (a) VALUES (1)"))
        assert ast.is_write(parse("UPDATE t SET a = 1"))
        assert ast.is_write(parse("DELETE FROM t"))
        assert not ast.is_write(parse("SELECT a FROM t"))


class TestErrors:
    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM t extra ,")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a WHERE b = 1")

    def test_not_a_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("DROP TABLE t")


class TestRoundTrip:
    """str(parse(sql)) must itself parse to an equal AST."""

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a, b AS x FROM t WHERE a = 1 AND b > 2",
            "SELECT count(*) FROM t GROUP BY a HAVING count(*) > 3",
            "SELECT a FROM t1, t2 WHERE t1.x = t2.y ORDER BY a DESC LIMIT 2",
            "SELECT a FROM (SELECT b AS a FROM u) AS s WHERE a IN (1, 2)",
            "INSERT INTO t (a, b) VALUES (1, 'x''y')",
            "UPDATE t SET a = a + 1 WHERE b BETWEEN 1 AND 2",
            "DELETE FROM t WHERE name LIKE 'ab%'",
            "SELECT a FROM t WHERE (a = 1 OR b = 2) AND NOT c = 3",
        ],
    )
    def test_round_trip(self, sql):
        first = parse(sql)
        second = parse(str(first))
        assert first == second
