"""Predicate normalization tests, including DNF equivalence properties."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast, parse
from repro.sql.predicates import (
    FilterPredicate,
    JoinPredicate,
    classify_atom,
    classify_conjuncts,
    conjuncts_of,
    dnf_terms,
    referenced_columns,
    to_dnf,
    to_nnf,
)


def where_of(sql: str) -> ast.Expr:
    return parse(f"SELECT a FROM t WHERE {sql}").where


class TestConjuncts:
    def test_none_is_empty(self):
        assert conjuncts_of(None) == []

    def test_single_atom(self):
        expr = where_of("a = 1")
        assert conjuncts_of(expr) == [expr]

    def test_flat_and(self):
        expr = where_of("a = 1 AND b = 2 AND c = 3")
        assert len(conjuncts_of(expr)) == 3

    def test_nested_and_flattened(self):
        expr = ast.And(
            items=(
                where_of("a = 1"),
                ast.And(items=(where_of("b = 2"), where_of("c = 3"))),
            )
        )
        assert len(conjuncts_of(expr)) == 3

    def test_or_not_split(self):
        expr = where_of("a = 1 OR b = 2")
        assert conjuncts_of(expr) == [expr]


class TestNnf:
    def test_not_comparison_flips_operator(self):
        expr = to_nnf(where_of("NOT a < 1"))
        assert isinstance(expr, ast.Comparison)
        assert expr.op == ">="

    def test_not_and_becomes_or(self):
        expr = to_nnf(where_of("NOT (a = 1 AND b = 2)"))
        assert isinstance(expr, ast.Or)

    def test_not_or_becomes_and(self):
        expr = to_nnf(where_of("NOT (a = 1 OR b = 2)"))
        assert isinstance(expr, ast.And)

    def test_double_negation_cancels(self):
        expr = to_nnf(where_of("NOT NOT a = 1"))
        assert isinstance(expr, ast.Comparison)
        assert expr.op == "="

    def test_not_is_null_flips(self):
        expr = to_nnf(where_of("NOT a IS NULL"))
        assert isinstance(expr, ast.IsNull)
        assert expr.negated


class TestDnf:
    def test_paper_example6_forms_equivalent(self):
        """(a AND b) OR (a AND c)  vs  a AND (b OR c) — same disjuncts."""
        form1 = where_of("(a = 1 AND b = 2) OR (a = 1 AND c = 3)")
        form2 = where_of("a = 1 AND (b = 2 OR c = 3)")
        terms1 = {frozenset(map(str, t)) for t in dnf_terms(form1)}
        terms2 = {frozenset(map(str, t)) for t in dnf_terms(form2)}
        assert terms1 == terms2

    def test_atom_is_single_term(self):
        assert len(dnf_terms(where_of("a = 1"))) == 1

    def test_conjunction_is_single_term(self):
        terms = dnf_terms(where_of("a = 1 AND b = 2"))
        assert len(terms) == 1
        assert len(terms[0]) == 2

    def test_disjunction_splits(self):
        terms = dnf_terms(where_of("a = 1 OR b = 2"))
        assert len(terms) == 2

    def test_distribution(self):
        terms = dnf_terms(where_of("(a = 1 OR b = 2) AND (c = 3 OR d = 4)"))
        assert len(terms) == 4

    def test_to_dnf_shape(self):
        expr = to_dnf(where_of("a = 1 AND (b = 2 OR c = 3)"))
        assert isinstance(expr, ast.Or)
        assert all(isinstance(item, ast.And) for item in expr.items)

    def test_term_cap_bounds_blowup(self):
        # 2^8 = 256 > cap of 64.
        clauses = " AND ".join(
            f"(a{i} = 1 OR b{i} = 2)" for i in range(8)
        )
        terms = dnf_terms(where_of(clauses))
        assert len(terms) <= 64


def _eval_bool(expr: ast.Expr, env: dict) -> bool:
    """Tiny evaluator over {name: bool} environments.

    ``a = 1`` reads variable a; negation rewriting turns ``NOT a = 1``
    into ``a <> 1``, which must evaluate as the complement.
    """
    if isinstance(expr, ast.Comparison):
        value = env[expr.left.column]
        return value if expr.op == "=" else not value
    if isinstance(expr, ast.And):
        return all(_eval_bool(i, env) for i in expr.items)
    if isinstance(expr, ast.Or):
        return any(_eval_bool(i, env) for i in expr.items)
    if isinstance(expr, ast.Not):
        return not _eval_bool(expr.child, env)
    raise AssertionError(f"unexpected node {expr}")


@st.composite
def boolean_exprs(draw, depth=0):
    """Random boolean expressions over three variables."""
    variables = ["a", "b", "c"]
    if depth >= 3 or draw(st.booleans()):
        name = draw(st.sampled_from(variables))
        return ast.Comparison(
            op="=",
            left=ast.ColumnRef(column=name),
            right=ast.Literal(value=1),
        )
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return ast.Not(child=draw(boolean_exprs(depth=depth + 1)))
    children = tuple(
        draw(boolean_exprs(depth=depth + 1))
        for _ in range(draw(st.integers(2, 3)))
    )
    return ast.And(items=children) if kind == "and" else ast.Or(items=children)


class TestDnfProperties:
    @given(boolean_exprs())
    @settings(max_examples=120, deadline=None)
    def test_dnf_preserves_truth_table(self, expr):
        """DNF rewriting must not change the predicate's semantics."""
        dnf = to_dnf(expr)
        for bits in itertools.product([False, True], repeat=3):
            env = dict(zip("abc", bits))
            assert _eval_bool(expr, env) == _eval_bool(dnf, env)

    @given(boolean_exprs())
    @settings(max_examples=80, deadline=None)
    def test_nnf_has_no_negated_connectives(self, expr):
        nnf = to_nnf(expr)
        for node in ast.walk(nnf):
            if isinstance(node, ast.Not):
                assert not isinstance(node.child, (ast.And, ast.Or))


class TestClassification:
    def test_eq_filter(self):
        kind, fp = classify_atom(where_of("a = 5"))
        assert kind == "filter"
        assert fp.op == "="
        assert fp.values == (5,)

    def test_reversed_comparison_flips(self):
        kind, fp = classify_atom(where_of("5 < a"))
        assert kind == "filter"
        assert fp.op == ">"

    def test_between_filter(self):
        kind, fp = classify_atom(where_of("a BETWEEN 1 AND 9"))
        assert kind == "filter"
        assert fp.op == "between"
        assert fp.values == (1, 9)

    def test_in_filter(self):
        kind, fp = classify_atom(where_of("a IN (1, 2)"))
        assert kind == "filter"
        assert fp.values == (1, 2)

    def test_like_filter(self):
        kind, fp = classify_atom(where_of("a LIKE 'x%'"))
        assert kind == "filter"
        assert fp.is_range

    def test_isnull_filter(self):
        kind, fp = classify_atom(where_of("a IS NULL"))
        assert kind == "filter"
        assert fp.op == "isnull"

    def test_join_atom(self):
        kind, jp = classify_atom(where_of("t1.a = t2.b"))
        assert kind == "join"
        assert isinstance(jp, JoinPredicate)

    def test_non_equi_column_comparison_is_other(self):
        kind, _ = classify_atom(where_of("t1.a < t2.b"))
        assert kind == "other"

    def test_placeholder_counts_as_constant(self):
        kind, fp = classify_atom(where_of("a = $1"))
        assert kind == "filter"
        assert fp.values == (None,)

    def test_arithmetic_constant_side(self):
        kind, fp = classify_atom(where_of("a = 1 + 2"))
        assert kind == "filter"

    def test_classify_conjuncts_buckets(self):
        expr = where_of("a = 1 AND t1.x = t2.y AND t1.p < t2.q")
        result = classify_conjuncts(conjuncts_of(expr))
        assert len(result.filters) == 1
        assert len(result.joins) == 1
        assert len(result.other) == 1


class TestReferencedColumns:
    def test_collects_qualified_and_bare(self):
        expr = where_of("t1.a = 1 AND b > 2")
        assert referenced_columns(expr) == {("t1", "a"), (None, "b")}

    def test_whole_statement(self):
        stmt = parse("SELECT x FROM t WHERE y = 1 ORDER BY z")
        cols = {c for _, c in referenced_columns(stmt)}
        assert cols == {"x", "y", "z"}
