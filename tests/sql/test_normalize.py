"""Raw-SQL normalizer: masking rules and the soundness property.

The fast path's entire correctness argument is the one-directional
guarantee *equal raw keys imply equal template fingerprints*; the
property sweep at the bottom checks it over every workload generator
in the repo (a few thousand statements each, fixed seeds).
"""

import pytest

from repro.sql import parse
from repro.sql.fingerprint import parameterize
from repro.sql.lexer import SqlSyntaxError, scan
from repro.sql.normalize import (
    NORMALIZER_VERSION,
    normalize_sql,
    raw_key,
)
from repro.workloads.banking import BankingWorkload
from repro.workloads.dynamic import epidemic_phases
from repro.workloads.epidemic import EpidemicWorkload
from repro.workloads.tpcc import TpccWorkload


def _fingerprint(sql: str) -> str:
    return parameterize(parse(sql)).fingerprint


class TestMaskingRules:
    def test_literals_masked(self):
        key = normalize_sql(
            "SELECT id FROM people WHERE community = 3 AND status = 'x'"
        )
        assert key == (
            "select id from people where community = ? and status = ?"
        )

    def test_case_and_whitespace_canonicalized(self):
        assert normalize_sql(
            "SELECT  a\nFROM t   WHERE b = 1"
        ) == normalize_sql("select a from t where b = 2")

    def test_comments_vanish(self):
        assert normalize_sql(
            "select a from t -- trailing\n where b = 1"
        ) == normalize_sql("select a from t where b = 9")

    def test_limit_number_survives(self):
        # Select.limit survives parameterization, so different limits
        # are different templates and must stay different keys.
        five = normalize_sql("select a from t limit 5")
        ten = normalize_sql("select a from t limit 10")
        assert five != ten
        assert five.endswith("limit 5")

    def test_limit_context_crosses_comments(self):
        assert normalize_sql(
            "select a from t limit -- soon\n 7"
        ).endswith("limit 7")

    def test_in_list_collapses(self):
        assert normalize_sql(
            "select a from t where b in (1, 2, 3)"
        ) == normalize_sql("select a from t where b in (9)")

    def test_in_list_with_expression_does_not_collapse(self):
        # The parameterizer keeps one placeholder only for pure
        # literal lists; a mixed list must not share its key.
        pure = normalize_sql("select a from t where b in (1, 2)")
        mixed = normalize_sql("select a from t where b in (1, c)")
        assert pure != mixed

    def test_ident_ending_in_keyword_not_collapsed(self):
        key = normalize_sql("select margin from t where margin = 3")
        assert "margin" in key

    def test_values_rows_collapse(self):
        one = normalize_sql(
            "insert into t (a, b) values (1, 'x')"
        )
        three = normalize_sql(
            "insert into t (a, b) values (1, 'x'), (2, 'y'), (3, 'z')"
        )
        assert one == three

    def test_values_arity_preserved(self):
        two = normalize_sql("insert into t (a, b) values (1, 2)")
        three = normalize_sql("insert into t (a, b) values (1, 2, 3)")
        assert two != three

    def test_placeholders_kept_verbatim(self):
        key = normalize_sql("select a from t where b = $1")
        assert "$1" in key

    def test_version_in_raw_key(self):
        version, text = raw_key("select a from t")
        assert version == NORMALIZER_VERSION
        assert text == "select a from t"


class TestErrorParity:
    """Unscannable input raises before any cache can be touched."""

    @pytest.mark.parametrize(
        "bad",
        [
            "select a from t where b = 'unterminated",
            "select a from t where b = @",
            "select ; from t",
        ],
    )
    def test_raises_like_the_lexer(self, bad):
        with pytest.raises(SqlSyntaxError):
            normalize_sql(bad)
        with pytest.raises(SqlSyntaxError):
            scan(bad)

    def test_trailing_whitespace_and_comments_ok(self):
        assert normalize_sql("select a from t  -- done") == (
            "select a from t"
        )


def _dynamic_statements(count_per_phase: int = 300):
    workload = epidemic_phases(
        EpidemicWorkload(people=2000, seed=7),
        queries_per_phase=count_per_phase,
    )
    for phase_index, phase in enumerate(workload):
        for query in phase.queries(seed=phase_index):
            yield query.sql


_GENERATORS = {
    "banking": lambda: (
        q.sql
        for q in BankingWorkload(
            accounts=500, txn_rows=2000, product_rows=50, seed=31
        ).queries(2000, seed=5)
    ),
    "tpcc": lambda: (
        q.sql
        for q in TpccWorkload(scale=1, seed=11).queries(2000, seed=17)
    ),
    "epidemic": lambda: (
        q.sql
        for q in EpidemicWorkload(people=2000, seed=7).queries(
            2000, seed=3
        )
    ),
    "dynamic": _dynamic_statements,
}


@pytest.mark.parametrize("name", sorted(_GENERATORS))
def test_raw_key_soundness_over_workload(name):
    """Equal raw keys ⇒ equal fingerprints, across every generator.

    This is the property the raw-key cache stands on: whatever SQL a
    workload emits, two statements that normalize to the same key
    must parameterize to the same template — a cached fingerprint is
    then always the fingerprint a full parse would have produced.
    """
    key_to_fingerprint = {}
    statements = 0
    for sql in _GENERATORS[name]():
        statements += 1
        key = normalize_sql(sql)
        fingerprint = _fingerprint(sql)
        previous = key_to_fingerprint.setdefault(key, fingerprint)
        assert previous == fingerprint, (
            f"raw-key alias in {name}: key {key!r} maps to both "
            f"{previous!r} and {fingerprint!r} (sql: {sql!r})"
        )
    assert statements >= 900  # the sweep actually ran
    assert len(key_to_fingerprint) >= 2
