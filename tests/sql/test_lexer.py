"""Tokenizer unit tests."""

import pytest

from repro.sql.lexer import Lexer, SqlSyntaxError, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [
            (TokenType.KEYWORD, "select")
        ] * 3

    def test_identifiers_lowercased(self):
        assert kinds("Foo BAR_baz") == [
            (TokenType.IDENT, "foo"),
            (TokenType.IDENT, "bar_baz"),
        ]

    def test_integer_literal(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]

    def test_float_literal(self):
        assert kinds("3.14") == [(TokenType.NUMBER, "3.14")]

    def test_leading_dot_float(self):
        assert kinds(".5") == [(TokenType.NUMBER, ".5")]

    def test_number_then_dot_access_not_merged(self):
        # "t1.c" after a number boundary: "1.c" must not lex as float.
        tokens = kinds("t1.c")
        assert tokens == [
            (TokenType.IDENT, "t1"),
            (TokenType.PUNCT, "."),
            (TokenType.IDENT, "c"),
        ]

    def test_string_literal(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_string_with_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_string_preserves_case(self):
        assert kinds("'MiXeD'") == [(TokenType.STRING, "MiXeD")]

    def test_empty_string(self):
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_placeholder(self):
        assert kinds("$1 $23 $") == [
            (TokenType.PLACEHOLDER, "$1"),
            (TokenType.PLACEHOLDER, "$23"),
            (TokenType.PLACEHOLDER, "$"),
        ]


class TestOperators:
    @pytest.mark.parametrize(
        "op", ["<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/"]
    )
    def test_each_operator(self, op):
        assert kinds(op) == [(TokenType.OPERATOR, op)]

    def test_two_char_operators_not_split(self):
        assert kinds("a<=b") == [
            (TokenType.IDENT, "a"),
            (TokenType.OPERATOR, "<="),
            (TokenType.IDENT, "b"),
        ]

    def test_punctuation(self):
        assert kinds("(,.)") == [
            (TokenType.PUNCT, "("),
            (TokenType.PUNCT, ","),
            (TokenType.PUNCT, "."),
            (TokenType.PUNCT, ")"),
        ]


class TestWhitespaceAndComments:
    def test_whitespace_ignored(self):
        assert kinds("  a \t\n b ") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_line_comment_skipped(self):
        assert kinds("a -- comment here\n b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_comment_at_end_of_input(self):
        assert kinds("a -- trailing") == [(TokenType.IDENT, "a")]

    def test_eof_token_present(self):
        tokens = tokenize("a")
        assert tokens[-1].type is TokenType.EOF


class TestErrors:
    def test_unterminated_string_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a ; b")

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("ab @")
        assert excinfo.value.position == 3


class TestRealQueries:
    def test_full_select_token_count(self):
        text = (
            "SELECT a, b FROM t WHERE c = 1 AND d > 'x' "
            "GROUP BY a ORDER BY b DESC LIMIT 5"
        )
        tokens = tokenize(text)
        assert tokens[-1].type is TokenType.EOF
        assert all(t.position >= 0 for t in tokens)

    def test_matches_helper(self):
        token = tokenize("select")[0]
        assert token.matches(TokenType.KEYWORD, "select")
        assert token.matches(TokenType.KEYWORD)
        assert not token.matches(TokenType.IDENT)
        assert not token.matches(TokenType.KEYWORD, "from")
