"""SQL2Template fingerprinting tests."""

import pytest

from repro.sql import ast, parse
from repro.sql.fingerprint import fingerprint, parameterize


class TestLiteralLifting:
    def test_same_shape_different_values_share_fingerprint(self):
        a = fingerprint(parse("SELECT a FROM t WHERE b = 1"))
        b = fingerprint(parse("SELECT a FROM t WHERE b = 999"))
        assert a == b

    def test_string_and_numeric_literals_lifted(self):
        fp = fingerprint(
            parse("SELECT a FROM t WHERE b = 'x' AND c > 3.5")
        )
        assert "'x'" not in fp
        assert "3.5" not in fp
        assert "$" in fp

    def test_different_shapes_differ(self):
        a = fingerprint(parse("SELECT a FROM t WHERE b = 1"))
        b = fingerprint(parse("SELECT a FROM t WHERE c = 1"))
        assert a != b

    def test_extracted_values_in_order(self):
        pq = parameterize(
            parse("SELECT a FROM t WHERE b = 7 AND c BETWEEN 1 AND 2")
        )
        assert pq.values == (7, 1, 2)

    def test_whitespace_and_case_insensitive(self):
        a = fingerprint(parse("select  A from T where B=2"))
        b = fingerprint(parse("SELECT a FROM t WHERE b = 5"))
        assert a == b


class TestInListCollapse:
    def test_in_lists_of_different_lengths_share_template(self):
        a = fingerprint(parse("SELECT a FROM t WHERE b IN (1, 2)"))
        b = fingerprint(parse("SELECT a FROM t WHERE b IN (1, 2, 3, 4)"))
        assert a == b


class TestInsertCollapse:
    def test_row_count_does_not_matter(self):
        a = fingerprint(parse("INSERT INTO t (a, b) VALUES (1, 2)"))
        b = fingerprint(
            parse("INSERT INTO t (a, b) VALUES (3, 4), (5, 6)")
        )
        assert a == b

    def test_different_column_lists_differ(self):
        a = fingerprint(parse("INSERT INTO t (a) VALUES (1)"))
        b = fingerprint(parse("INSERT INTO t (b) VALUES (1)"))
        assert a != b

    def test_first_row_values_recorded(self):
        pq = parameterize(parse("INSERT INTO t (a, b) VALUES (1, 'x')"))
        assert pq.values == (1, "x")


class TestWrites:
    def test_update_literals_lifted(self):
        a = fingerprint(parse("UPDATE t SET a = 1 WHERE b = 2"))
        b = fingerprint(parse("UPDATE t SET a = 9 WHERE b = 8"))
        assert a == b

    def test_update_column_arithmetic_preserved(self):
        fp = fingerprint(parse("UPDATE t SET a = a + 5 WHERE b = 2"))
        assert "a + $" in fp

    def test_delete(self):
        a = fingerprint(parse("DELETE FROM t WHERE a = 1"))
        b = fingerprint(parse("DELETE FROM t WHERE a = 2"))
        assert a == b


class TestNestedStructures:
    def test_subquery_literals_lifted(self):
        a = fingerprint(
            parse("SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 1)")
        )
        b = fingerprint(
            parse("SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 2)")
        )
        assert a == b

    def test_derived_table_literals_lifted(self):
        a = fingerprint(
            parse("SELECT a FROM (SELECT b FROM u WHERE c = 1) AS s")
        )
        b = fingerprint(
            parse("SELECT a FROM (SELECT b FROM u WHERE c = 2) AS s")
        )
        assert a == b

    def test_limit_is_part_of_template(self):
        a = fingerprint(parse("SELECT a FROM t LIMIT 1"))
        b = fingerprint(parse("SELECT a FROM t LIMIT 2"))
        # LIMIT is structural (changes the plan shape), so differs.
        assert a != b

    def test_template_statement_is_reparsable(self):
        pq = parameterize(parse("SELECT a FROM t WHERE b = 1 AND c = 'x'"))
        reparsed = parse(pq.fingerprint)
        assert fingerprint(reparsed) == pq.fingerprint
