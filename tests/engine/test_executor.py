"""Executor correctness: SQL results vs Python-native oracles, plus
index-scan/seq-scan agreement properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ports.memory import MemoryBackend
from repro.engine.executor import ExecutionError
from repro.engine.index import IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table


@pytest.fixture
def db(people_db):
    return people_db


def rows_of(db):
    return [row for _rid, row in db.catalog.table("people").heap.scan()]


class TestFilters:
    def test_equality(self, db):
        got = db.execute("SELECT id FROM people WHERE community = 3").rows
        want = [(r[0],) for r in rows_of(db) if r[2] == 3]
        assert sorted(got) == sorted(want)

    def test_range(self, db):
        got = db.execute(
            "SELECT id FROM people WHERE temperature > 40.0"
        ).rows
        want = [(r[0],) for r in rows_of(db) if r[3] > 40.0]
        assert sorted(got) == sorted(want)

    def test_between_inclusive(self, db):
        got = db.execute(
            "SELECT id FROM people WHERE community BETWEEN 3 AND 5"
        ).rows
        want = [(r[0],) for r in rows_of(db) if 3 <= r[2] <= 5]
        assert sorted(got) == sorted(want)

    def test_in_list(self, db):
        got = db.execute(
            "SELECT id FROM people WHERE community IN (1, 4, 19)"
        ).rows
        want = [(r[0],) for r in rows_of(db) if r[2] in (1, 4, 19)]
        assert sorted(got) == sorted(want)

    def test_like_prefix(self, db):
        got = db.execute(
            "SELECT id FROM people WHERE name LIKE 'person_19%'"
        ).rows
        want = [
            (r[0],) for r in rows_of(db) if str(r[1]).startswith("person_19")
        ]
        assert sorted(got) == sorted(want)

    def test_like_underscore(self, db):
        got = db.execute(
            "SELECT id FROM people WHERE name LIKE 'person__'"
        ).rows
        want = [(r[0],) for r in rows_of(db) if len(str(r[1])) == 8]
        assert sorted(got) == sorted(want)

    def test_and_or_combination(self, db):
        got = db.execute(
            "SELECT id FROM people WHERE (community = 1 OR community = 2) "
            "AND status = 'confirmed'"
        ).rows
        want = [
            (r[0],)
            for r in rows_of(db)
            if r[2] in (1, 2) and r[4] == "confirmed"
        ]
        assert sorted(got) == sorted(want)

    def test_not(self, db):
        got = db.execute(
            "SELECT count(*) FROM people WHERE NOT community = 1"
        ).scalar
        want = sum(1 for r in rows_of(db) if r[2] != 1)
        assert got == want

    def test_ne(self, db):
        got = db.execute(
            "SELECT count(*) FROM people WHERE status <> 'healthy'"
        ).scalar
        want = sum(1 for r in rows_of(db) if r[4] != "healthy")
        assert got == want


class TestProjectionsAndShaping:
    def test_select_star_column_order(self, db):
        got = db.execute("SELECT * FROM people WHERE id = 5").rows
        want = [r for r in rows_of(db) if r[0] == 5]
        assert got == want

    def test_expression_projection(self, db):
        got = db.execute(
            "SELECT id, temperature * 2 FROM people WHERE id = 7"
        ).rows[0]
        want = next(r for r in rows_of(db) if r[0] == 7)
        assert got == (7, pytest.approx(want[3] * 2))

    def test_order_by_asc(self, db):
        got = db.execute(
            "SELECT id FROM people WHERE community = 2 ORDER BY id"
        ).rows
        assert got == sorted(got)

    def test_order_by_desc_limit(self, db):
        got = db.execute(
            "SELECT id FROM people ORDER BY id DESC LIMIT 5"
        ).rows
        assert [r[0] for r in got] == [1999, 1998, 1997, 1996, 1995]

    def test_order_by_two_keys(self, db):
        got = db.execute(
            "SELECT community, id FROM people "
            "WHERE community < 3 ORDER BY community, id DESC"
        ).rows
        want = sorted(
            [(r[2], r[0]) for r in rows_of(db) if r[2] < 3],
            key=lambda p: (p[0], -p[1]),
        )
        assert got == want

    def test_distinct(self, db):
        got = db.execute("SELECT DISTINCT community FROM people").rows
        assert len(got) == len({r[2] for r in rows_of(db)})

    def test_limit_zero(self, db):
        assert db.execute("SELECT id FROM people LIMIT 0").rows == []


class TestAggregates:
    def test_count_star(self, db):
        assert db.execute("SELECT count(*) FROM people").scalar == 2000

    def test_sum_avg_min_max(self, db):
        temps = [r[3] for r in rows_of(db)]
        result = db.execute(
            "SELECT sum(temperature), avg(temperature), "
            "min(temperature), max(temperature) FROM people"
        ).rows[0]
        assert result[0] == pytest.approx(sum(temps))
        assert result[1] == pytest.approx(sum(temps) / len(temps))
        assert result[2] == min(temps)
        assert result[3] == max(temps)

    def test_group_by_counts(self, db):
        got = dict(
            db.execute(
                "SELECT community, count(*) FROM people GROUP BY community"
            ).rows
        )
        want = {}
        for r in rows_of(db):
            want[r[2]] = want.get(r[2], 0) + 1
        assert got == want

    def test_having(self, db):
        got = db.execute(
            "SELECT status, count(*) AS n FROM people "
            "GROUP BY status HAVING n > 600"
        ).rows
        for _status, n in got:
            assert n > 600

    def test_count_distinct(self, db):
        got = db.execute(
            "SELECT count(DISTINCT community) FROM people"
        ).scalar
        assert got == len({r[2] for r in rows_of(db)})

    def test_aggregate_on_empty_group(self, db):
        result = db.execute(
            "SELECT count(*), sum(temperature) FROM people WHERE id = -1"
        ).rows[0]
        assert result == (0, None)

    def test_order_by_aggregate_alias(self, db):
        got = db.execute(
            "SELECT community, count(*) AS n FROM people "
            "GROUP BY community ORDER BY n DESC LIMIT 3"
        ).rows
        counts = [n for _c, n in got]
        assert counts == sorted(counts, reverse=True)


class TestJoins:
    def test_inner_join_matches_oracle(self, join_db):
        got = join_db.execute(
            "SELECT c.name, o.amount FROM customers c "
            "JOIN orders o ON c.cid = o.cid WHERE c.region = 2 "
            "AND o.amount > 900"
        ).rows
        customers = {
            r[0]: r
            for _rid, r in join_db.catalog.table("customers").heap.scan()
        }
        want = []
        for _rid, o in join_db.catalog.table("orders").heap.scan():
            c = customers.get(o[1])
            if c and c[2] == 2 and o[2] > 900:
                want.append((c[1], o[2]))
        assert sorted(got) == sorted(want)

    def test_join_agrees_with_and_without_indexes(
        self, join_db, indexed_join_db
    ):
        sql = (
            "SELECT c.cid, count(*) FROM customers c "
            "JOIN orders o ON c.cid = o.cid "
            "WHERE o.status = 'paid' GROUP BY c.cid ORDER BY c.cid"
        )
        assert join_db.execute(sql).rows == indexed_join_db.execute(sql).rows

    def test_derived_table_join(self, join_db):
        got = join_db.execute(
            "SELECT c.name FROM customers c, "
            "(SELECT cid, amount FROM orders WHERE amount > 995) AS big "
            "WHERE c.cid = big.cid"
        ).rows
        customers = {
            r[0]: r
            for _rid, r in join_db.catalog.table("customers").heap.scan()
        }
        want = [
            (customers[o[1]][1],)
            for _rid, o in join_db.catalog.table("orders").heap.scan()
            if o[2] > 995
        ]
        assert sorted(got) == sorted(want)

    def test_in_subquery(self, join_db):
        got = join_db.execute(
            "SELECT count(*) FROM customers WHERE cid IN "
            "(SELECT cid FROM orders WHERE amount > 998)"
        ).scalar
        cids = {
            o[1]
            for _rid, o in join_db.catalog.table("orders").heap.scan()
            if o[2] > 998
        }
        assert got == len(cids)

    def test_scalar_subquery(self, join_db):
        got = join_db.execute(
            "SELECT count(*) FROM orders WHERE amount > "
            "(SELECT max(amount) FROM orders) - 10"
        ).scalar
        amounts = [
            o[2] for _rid, o in join_db.catalog.table("orders").heap.scan()
        ]
        want = sum(1 for a in amounts if a > max(amounts) - 10)
        assert got == want


class TestWriteStatements:
    def test_insert_visible(self, db):
        db.execute(
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (50000, 'new', 3, 37.0, 'healthy')"
        )
        assert db.execute(
            "SELECT name FROM people WHERE id = 50000"
        ).rows == [("new",)]

    def test_insert_maintains_indexes(self, db):
        db.create_index(IndexDef(table="people", columns=("community",)))
        db.execute(
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (50001, 'new', 777, 37.0, 'healthy')"
        )
        got = db.execute(
            "SELECT id FROM people WHERE community = 777"
        ).rows
        assert got == [(50001,)]

    def test_update_changes_value(self, db):
        db.execute("UPDATE people SET temperature = 41.5 WHERE id = 3")
        assert db.execute(
            "SELECT temperature FROM people WHERE id = 3"
        ).scalar == 41.5

    def test_update_arithmetic_on_column(self, db):
        before = db.execute(
            "SELECT temperature FROM people WHERE id = 4"
        ).scalar
        db.execute(
            "UPDATE people SET temperature = temperature + 1.0 WHERE id = 4"
        )
        after = db.execute(
            "SELECT temperature FROM people WHERE id = 4"
        ).scalar
        assert after == pytest.approx(before + 1.0)

    def test_update_maintains_index(self, db):
        db.create_index(IndexDef(table="people", columns=("community",)))
        db.execute("UPDATE people SET community = 555 WHERE id = 10")
        assert (10,) in db.execute(
            "SELECT id FROM people WHERE community = 555"
        ).rows

    def test_update_rowcount(self, db):
        result = db.execute(
            "UPDATE people SET status = 'x' WHERE community = 1"
        )
        want = sum(1 for r in rows_of(db) if r[2] == 1)
        assert result.rowcount == want

    def test_delete_removes(self, db):
        db.execute("DELETE FROM people WHERE id = 11")
        assert db.execute(
            "SELECT count(*) FROM people WHERE id = 11"
        ).scalar == 0

    def test_delete_maintains_index(self, db):
        db.create_index(IndexDef(table="people", columns=("community",)))
        target = db.execute(
            "SELECT community FROM people WHERE id = 12"
        ).scalar
        before = db.execute(
            f"SELECT count(*) FROM people WHERE community = {target}"
        ).scalar
        db.execute("DELETE FROM people WHERE id = 12")
        after = db.execute(
            f"SELECT count(*) FROM people WHERE community = {target}"
        ).scalar
        assert after == before - 1

    def test_insert_explicit_nulls(self, db):
        db.execute(
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (50002, NULL, NULL, NULL, NULL)"
        )
        row = db.execute("SELECT * FROM people WHERE id = 50002").rows[0]
        assert row == (50002, None, None, None, None)


class TestNullSemantics:
    def test_null_comparison_filters_out(self, db):
        db.execute(
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (60000, 'n', NULL, NULL, NULL)"
        )
        # NULL community must match neither = nor <>.
        eq = db.execute(
            "SELECT count(*) FROM people WHERE community = 1 "
            "AND id = 60000"
        ).scalar
        ne = db.execute(
            "SELECT count(*) FROM people WHERE community <> 1 "
            "AND id = 60000"
        ).scalar
        assert eq == 0 and ne == 0

    def test_is_null(self, db):
        db.execute(
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (60001, 'n', NULL, 37.0, 'x')"
        )
        got = db.execute(
            "SELECT id FROM people WHERE community IS NULL"
        ).rows
        assert (60001,) in got

    def test_aggregates_skip_nulls(self, db):
        db.execute(
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (60002, 'n', 1, NULL, 'x')"
        )
        count_col = db.execute(
            "SELECT count(temperature) FROM people"
        ).scalar
        count_star = db.execute("SELECT count(*) FROM people").scalar
        assert count_col == count_star - 1


class TestIndexConsistency:
    """Index-scan plans must return exactly what seq scans return."""

    @pytest.mark.parametrize(
        "predicate",
        [
            "community = 7",
            "community = 7 AND temperature > 39.0",
            "community BETWEEN 2 AND 4",
            "community = 1 AND status = 'suspect'",
            "temperature >= 40.9",
        ],
    )
    def test_same_results_with_index(self, people_db, predicate):
        sql = f"SELECT id FROM people WHERE {predicate}"
        before = sorted(people_db.execute(sql).rows)
        people_db.create_index(
            IndexDef(table="people", columns=("community", "temperature"))
        )
        people_db.create_index(
            IndexDef(table="people", columns=("temperature",))
        )
        people_db.create_index(
            IndexDef(table="people", columns=("community", "status"))
        )
        people_db.analyze()
        after = sorted(people_db.execute(sql).rows)
        assert before == after

    def test_hypothetical_index_never_executes(self, people_db):
        hypo = IndexDef(table="people", columns=("community",))
        cost, plan = people_db.estimate_cost(
            "SELECT id FROM people WHERE community = 1", [hypo]
        )
        assert cost > 0
        # The real execution path must not see the hypothetical index.
        result = people_db.execute(
            "SELECT id FROM people WHERE community = 1"
        )
        assert result.rowcount > 0


@given(
    community=st.integers(-1, 25),
    low=st.floats(min_value=35.0, max_value=42.0),
    width=st.floats(min_value=0.0, max_value=3.0),
)
@settings(max_examples=40, deadline=None)
def test_property_index_and_seq_agree(community, low, width):
    db = _property_db()
    high = round(low + width, 1)
    low = round(low, 1)
    sql = (
        "SELECT id FROM people "
        f"WHERE community = {community} "
        f"AND temperature BETWEEN {low} AND {high}"
    )
    with_index = sorted(db.execute(sql).rows)
    masked = _property_db(indexed=False)
    without = sorted(masked.execute(sql).rows)
    assert with_index == without


_CACHE = {}


def _property_db(indexed=True):
    key = bool(indexed)
    if key not in _CACHE:
        db = MemoryBackend()
        db.create_table(
            table(
                "people",
                [
                    ("id", T.INT),
                    ("name", T.TEXT),
                    ("community", T.INT),
                    ("temperature", T.FLOAT),
                ],
                primary_key=["id"],
            )
        )
        rng = random.Random(5)
        db.load_rows(
            "people",
            [
                (
                    i,
                    f"p{i}",
                    rng.randrange(25),
                    round(35.0 + rng.random() * 7.0, 1),
                )
                for i in range(1500)
            ],
        )
        if indexed:
            db.create_index(
                IndexDef(
                    table="people", columns=("community", "temperature")
                )
            )
        db.analyze()
        _CACHE[key] = db
    return _CACHE[key]


class TestErrors:
    def test_unknown_table(self, db):
        from repro.engine.planner import PlanningError

        with pytest.raises(PlanningError):
            db.execute("SELECT a FROM missing")

    def test_unknown_column(self, db):
        from repro.engine.planner import PlanningError

        with pytest.raises(PlanningError):
            db.execute("SELECT nope FROM people")

    def test_ambiguous_column(self, join_db):
        from repro.engine.planner import PlanningError

        with pytest.raises(PlanningError):
            join_db.execute(
                "SELECT cid FROM customers, orders "
                "WHERE customers.cid = orders.cid"
            )

    def test_insert_non_literal_rejected(self, db):
        from repro.engine.planner import PlanningError

        with pytest.raises(PlanningError):
            db.execute(
                "INSERT INTO people (id, name, community, temperature, "
                "status) VALUES (id, 'x', 1, 1.0, 'y')"
            )
