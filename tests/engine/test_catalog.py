"""Catalog and what-if overlay tests."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.index import Index, IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table
from repro.engine.stats import analyze_table


def fresh_catalog():
    catalog = Catalog()
    schema = table(
        "t", [("a", T.INT), ("b", T.INT), ("c", T.TEXT)], primary_key=["a"]
    )
    entry = catalog.add_table(schema)
    rows = [(i, i % 10, f"v{i}") for i in range(1000)]
    for row in rows:
        entry.heap.insert(row)
    entry.stats = analyze_table(rows, schema.column_names)
    return catalog, schema


class TestTables:
    def test_add_and_get(self):
        catalog, schema = fresh_catalog()
        assert catalog.table("t").schema is schema
        assert catalog.has_table("t")
        assert catalog.table_names() == ["t"]

    def test_duplicate_table_rejected(self):
        catalog, schema = fresh_catalog()
        with pytest.raises(ValueError):
            catalog.add_table(schema)

    def test_missing_table_raises(self):
        catalog, _ = fresh_catalog()
        with pytest.raises(KeyError):
            catalog.table("missing")

    def test_drop_table(self):
        catalog, _ = fresh_catalog()
        catalog.drop_table("t")
        assert not catalog.has_table("t")


class TestIndexes:
    def make_index(self, catalog, columns=("b",)):
        entry = catalog.table("t")
        index = Index(IndexDef(table="t", columns=columns), entry.schema)
        index.build(list(entry.heap.scan()))
        catalog.add_index(index)
        return index

    def test_add_and_lookup(self):
        catalog, _ = fresh_catalog()
        index = self.make_index(catalog)
        assert catalog.get_index(index.definition) is index
        assert catalog.real_index_defs() == [index.definition]

    def test_duplicate_index_rejected(self):
        catalog, _ = fresh_catalog()
        self.make_index(catalog)
        with pytest.raises(ValueError):
            self.make_index(catalog)

    def test_drop_index(self):
        catalog, _ = fresh_catalog()
        index = self.make_index(catalog)
        catalog.drop_index(index.definition)
        assert catalog.get_index(index.definition) is None

    def test_drop_missing_raises(self):
        catalog, _ = fresh_catalog()
        with pytest.raises(KeyError):
            catalog.drop_index(IndexDef(table="t", columns=("c",)))

    def test_total_bytes(self):
        catalog, _ = fresh_catalog()
        index = self.make_index(catalog)
        assert catalog.total_index_bytes() == index.byte_size


class TestWhatIf:
    def test_hypothetical_visible_to_planner_view(self):
        catalog, _ = fresh_catalog()
        hypo = IndexDef(table="t", columns=("b", "c"))
        catalog.set_whatif(hypothetical=[hypo])
        defs = catalog.visible_index_defs("t")
        assert hypo in defs
        assert not catalog.is_materialized(hypo)

    def test_masking_hides_real_index(self):
        catalog, _ = fresh_catalog()
        entry = catalog.table("t")
        index = Index(IndexDef(table="t", columns=("b",)), entry.schema)
        index.build(list(entry.heap.scan()))
        catalog.add_index(index)
        catalog.set_whatif(masked=[index.definition])
        assert index.definition not in catalog.visible_index_defs("t")
        assert not catalog.is_materialized(index.definition)

    def test_clear_restores(self):
        catalog, _ = fresh_catalog()
        catalog.set_whatif(hypothetical=[IndexDef(table="t", columns=("b",))])
        assert catalog.whatif_active
        catalog.clear_whatif()
        assert not catalog.whatif_active
        assert catalog.visible_index_defs("t") == []

    def test_hypothetical_shape_close_to_real(self):
        catalog, _ = fresh_catalog()
        definition = IndexDef(table="t", columns=("b",))
        hypo_shape = catalog.index_shape(definition)

        entry = catalog.table("t")
        index = Index(definition, entry.schema)
        index.build(list(entry.heap.scan()))
        catalog.add_index(index)
        real_shape = catalog.index_shape(definition)

        assert hypo_shape.height == real_shape.height
        assert hypo_shape.entry_count == real_shape.entry_count
        assert hypo_shape.total_pages == pytest.approx(
            real_shape.total_pages, rel=0.25, abs=2
        )
