"""Deterministic fault-injection framework unit tests."""

import pytest

from repro.engine.faults import (
    FAULT_POINTS,
    FaultError,
    FaultInjector,
    FaultPlan,
    PERMANENT,
    PermanentFault,
    TRANSIENT,
    TransientFault,
    VirtualClock,
    backoff_delay,
    backoff_schedule,
    check,
)


def fires(injector: FaultInjector, point: str, visits: int):
    """Visit a point repeatedly; return the visit ordinals that fired.

    Ordinals are the injector's own (global) visit coordinates, so
    they keep counting across earlier suppressed visits.
    """
    out = []
    for _ in range(visits):
        try:
            injector.check(point)
        except FaultError as exc:
            assert exc.point == point
            out.append(exc.visit)
    return out


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan().add("nope.such.point", probability=0.5)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan().add("index.build", probability=1.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultPlan().add("index.build", probability=0.1, kind="weird")

    def test_chaos_covers_all_points(self):
        plan = FaultPlan.chaos(seed=5, rate=0.3)
        assert {r.point for r in plan.rules} == set(FAULT_POINTS)
        assert all(r.probability == 0.3 for r in plan.rules)


class TestDeterminism:
    def test_same_seed_same_firing_sequence(self):
        make = lambda: FaultPlan(seed=42).add(
            "estimator.predict", probability=0.3
        ).injector()
        assert fires(make(), "estimator.predict", 200) == fires(
            make(), "estimator.predict", 200
        )

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1).add("planner.plan", probability=0.3)
        b = FaultPlan(seed=2).add("planner.plan", probability=0.3)
        assert fires(a.injector(), "planner.plan", 200) != fires(
            b.injector(), "planner.plan", 200
        )

    def test_per_point_streams_compose(self):
        """Adding a rule for one point never shifts another's draws."""
        solo = FaultPlan(seed=9).add("index.build", probability=0.25)
        both = FaultPlan(seed=9).add(
            "index.build", probability=0.25
        ).add("stats.refresh", probability=0.5)
        a, b = solo.injector(), both.injector()
        for _ in range(100):
            # Interleave visits to the second point in one injector.
            try:
                b.check("stats.refresh")
            except FaultError:
                pass
        out_a = fires(a, "index.build", 100)
        out_b = fires(b, "index.build", 100)
        assert out_a == out_b


class TestRules:
    def test_schedule_fires_on_exact_visits(self):
        injector = FaultPlan(seed=0).add(
            "parser.parse", schedule=[2, 5]
        ).injector()
        assert fires(injector, "parser.parse", 8) == [2, 5]

    def test_probability_one_fires_always(self):
        injector = FaultPlan(seed=0).add(
            "index.build", probability=1.0
        ).injector()
        assert fires(injector, "index.build", 5) == [1, 2, 3, 4, 5]

    def test_limit_caps_total_fires(self):
        injector = FaultPlan(seed=0).add(
            "index.build", probability=1.0, limit=2
        ).injector()
        assert fires(injector, "index.build", 10) == [1, 2]

    def test_kinds_map_to_exception_types(self):
        plan = FaultPlan(seed=0)
        plan.add("index.build", schedule=[1], kind=PERMANENT)
        plan.add("parser.parse", schedule=[1], kind=TRANSIENT)
        injector = plan.injector()
        with pytest.raises(PermanentFault):
            injector.check("index.build")
        with pytest.raises(TransientFault):
            injector.check("parser.parse")

    def test_unruled_points_never_fire(self):
        injector = FaultPlan(seed=0).add(
            "index.build", probability=1.0
        ).injector()
        for _ in range(50):
            injector.check("planner.plan")
        assert injector.fired.get("planner.plan", 0) == 0


class TestSuppression:
    def test_no_fires_while_suppressed(self):
        injector = FaultPlan(seed=0).add(
            "index.build", probability=1.0
        ).injector()
        with injector.suppressed():
            for _ in range(10):
                injector.check("index.build")
        assert injector.total_fired() == 0
        assert injector.visits["index.build"] == 10

    def test_suppressed_visits_consume_no_draws(self):
        """The random stream is untouched inside a suppressed block."""
        make = lambda: FaultPlan(seed=7).add(
            "estimator.predict", probability=0.4
        ).injector()
        plain, interrupted = make(), make()
        with interrupted.suppressed():
            for _ in range(25):
                interrupted.check("estimator.predict")
        # After suppression, the interrupted injector must replay the
        # plain injector's sequence exactly (offset by visit number).
        plain_fires = fires(plain, "estimator.predict", 100)
        late_fires = fires(interrupted, "estimator.predict", 100)
        assert [v - 25 for v in late_fires] == plain_fires[: len(late_fires)]

    def test_nested_suppression(self):
        injector = FaultPlan(seed=0).add(
            "index.build", probability=1.0
        ).injector()
        with injector.suppressed():
            with injector.suppressed():
                injector.check("index.build")
            injector.check("index.build")
        with pytest.raises(FaultError):
            injector.check("index.build")


class TestModuleShim:
    def test_none_injector_is_noop(self):
        check(None, "index.build")  # must not raise

    def test_delegates_to_injector(self):
        injector = FaultPlan(seed=0).add(
            "index.build", schedule=[1]
        ).injector()
        with pytest.raises(FaultError):
            check(injector, "index.build")


class TestStats:
    def test_stats_report_visits_and_fires(self):
        injector = FaultPlan(seed=0).add(
            "index.build", schedule=[1, 3]
        ).injector()
        fires(injector, "index.build", 4)
        assert injector.stats()["index.build"] == {
            "visits": 4,
            "fired": 2,
        }
        assert injector.total_fired() == 2


class TestVirtualClock:
    def test_sleep_advances_virtual_time_only(self):
        clock = VirtualClock()
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.now() == 2.0

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1)


class TestBackoff:
    def test_exponential_with_cap(self):
        assert backoff_delay(0) == 0.01
        assert backoff_delay(1) == 0.02
        assert backoff_delay(2) == 0.04
        assert backoff_delay(100) == 1.0  # capped

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(-1)

    def test_schedule_matches_delays(self):
        assert list(backoff_schedule(3)) == [
            backoff_delay(0),
            backoff_delay(1),
            backoff_delay(2),
        ]
