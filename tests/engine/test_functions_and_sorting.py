"""Scalar functions, NULL ordering, DISTINCT, and misc executor paths."""

import pytest

from repro.ports.memory import MemoryBackend
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table


@pytest.fixture
def fn_db():
    db = MemoryBackend()
    db.create_table(
        table(
            "t",
            [("id", T.INT), ("x", T.INT), ("s", T.TEXT)],
            primary_key=["id"],
        )
    )
    db.load_rows(
        "t",
        [
            (1, -5, "alpha"),
            (2, 3, "bee"),
            (3, None, "c"),
            (4, 10, None),
        ],
    )
    db.analyze()
    return db


class TestScalarFunctions:
    def test_abs(self, fn_db):
        assert fn_db.execute(
            "SELECT abs(x) FROM t WHERE id = 1"
        ).scalar == 5

    def test_abs_of_null(self, fn_db):
        assert fn_db.execute(
            "SELECT abs(x) FROM t WHERE id = 3"
        ).scalar is None

    def test_length(self, fn_db):
        assert fn_db.execute(
            "SELECT length(s) FROM t WHERE id = 1"
        ).scalar == 5

    def test_coalesce(self, fn_db):
        assert fn_db.execute(
            "SELECT coalesce(x, 0) FROM t WHERE id = 3"
        ).scalar == 0
        assert fn_db.execute(
            "SELECT coalesce(x, 0) FROM t WHERE id = 2"
        ).scalar == 3

    def test_unknown_function_raises(self, fn_db):
        from repro.engine.executor import ExecutionError

        with pytest.raises(ExecutionError):
            fn_db.execute("SELECT nosuchfn(x) FROM t")

    def test_function_in_where(self, fn_db):
        got = fn_db.execute(
            "SELECT id FROM t WHERE abs(x) > 4"
        ).rows
        assert sorted(got) == [(1,), (4,)]


class TestNullOrdering:
    def test_nulls_sort_first_ascending(self, fn_db):
        ids = [r[0] for r in fn_db.execute(
            "SELECT id FROM t ORDER BY x"
        ).rows]
        assert ids[0] == 3  # NULL x first

    def test_nulls_sort_last_descending(self, fn_db):
        ids = [r[0] for r in fn_db.execute(
            "SELECT id FROM t ORDER BY x DESC"
        ).rows]
        assert ids[-1] == 3

    def test_mixed_type_order_keys(self, fn_db):
        # Text column with a NULL present must still sort totally.
        ids = [r[0] for r in fn_db.execute(
            "SELECT id FROM t ORDER BY s"
        ).rows]
        assert ids[0] == 4  # NULL s first
        assert ids[1:] == [1, 2, 3]  # alpha, bee, c


class TestDistinct:
    def test_distinct_keeps_null_group(self, fn_db):
        fn_db.execute("INSERT INTO t (id, x, s) VALUES (5, NULL, 'z')")
        rows = fn_db.execute("SELECT DISTINCT x FROM t").rows
        values = {r[0] for r in rows}
        assert None in values
        # Two NULL x rows collapse into one distinct entry.
        assert len([v for v in rows if v[0] is None]) == 1

    def test_distinct_multi_column(self, fn_db):
        fn_db.execute("INSERT INTO t (id, x, s) VALUES (6, 3, 'bee')")
        rows = fn_db.execute("SELECT DISTINCT x, s FROM t").rows
        assert len(rows) == len(set(rows))
        assert (3, "bee") in rows


class TestGroupByNulls:
    def test_null_forms_its_own_group(self, fn_db):
        fn_db.execute("INSERT INTO t (id, x, s) VALUES (7, NULL, 'q')")
        rows = dict(
            fn_db.execute("SELECT x, count(*) FROM t GROUP BY x").rows
        )
        assert rows[None] == 2

    def test_group_by_expression(self, fn_db):
        rows = fn_db.execute(
            "SELECT x * 2, count(*) FROM t WHERE x IS NOT NULL "
            "GROUP BY x * 2"
        ).rows
        assert (6, 1) in rows


class TestStatementInputForms:
    def test_execute_accepts_parsed_statement(self, fn_db):
        from repro.sql import parse

        stmt = parse("SELECT count(*) FROM t")
        assert fn_db.execute(stmt).scalar == 4

    def test_estimate_cost_accepts_both_forms(self, fn_db):
        from repro.sql import parse

        by_text, _ = fn_db.estimate_cost("SELECT id FROM t WHERE id = 1")
        by_ast, _ = fn_db.estimate_cost(
            parse("SELECT id FROM t WHERE id = 1")
        )
        assert by_text == by_ast


class TestIsNullIndexScan:
    """IS NULL is an index-sargable probe (NULLs are stored keys)."""

    def test_index_scan_finds_null_rows(self, fn_db):
        from repro.engine.index import IndexDef

        want = sorted(
            fn_db.execute("SELECT id FROM t WHERE x IS NULL").rows
        )
        fn_db.create_index(IndexDef(table="t", columns=("x",)))
        fn_db.analyze()
        got = sorted(fn_db.execute("SELECT id FROM t WHERE x IS NULL").rows)
        assert got == want
        assert got == [(3,)]

    def test_is_not_null_never_uses_null_probe(self, fn_db):
        from repro.engine.index import IndexDef

        fn_db.create_index(IndexDef(table="t", columns=("x",)))
        fn_db.analyze()
        got = sorted(
            fn_db.execute("SELECT id FROM t WHERE x IS NOT NULL").rows
        )
        assert got == [(1,), (2,), (4,)]

    def test_is_null_selectivity_uses_null_fraction(self, fn_db):
        stats = fn_db.catalog.stats("t")
        assert stats.column("x").selectivity("isnull", ()) == (
            pytest.approx(0.25)
        )
        assert stats.column("x").selectivity("isnotnull", ()) == (
            pytest.approx(0.75)
        )
