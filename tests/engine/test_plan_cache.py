"""Planner plan-memoization tests: reuse, keys, invalidation."""

from repro.engine.index import IndexDef


def _plan_twice(db, sql):
    statement = db.parse_statement(sql)
    db.planner.plan(statement)
    before = db.planner.access_paths_computed
    db.planner.plan(statement)
    return before, db.planner.access_paths_computed


class TestPlanMemoization:
    def test_replan_hits_the_cache(self, people_db):
        before, after = _plan_twice(
            people_db, "SELECT id FROM people WHERE community = 3"
        )
        assert after == before
        assert people_db.planner.plan_cache_stats().hits > 0

    def test_disabled_cache_replans(self, people_db):
        people_db.planner.plan_cache_enabled = False
        before, after = _plan_twice(
            people_db, "SELECT id FROM people WHERE community = 3"
        )
        assert after > before

    def test_create_index_invalidates(self, people_db):
        sql = "SELECT id FROM people WHERE community = 3"
        statement = people_db.parse_statement(sql)
        people_db.planner.plan(statement)
        people_db.create_index(
            IndexDef(table="people", columns=("community",))
        )
        before = people_db.planner.access_paths_computed
        plan = people_db.planner.plan(statement)
        assert people_db.planner.access_paths_computed > before
        assert "community" in plan.explain()

    def test_write_invalidates_via_catalog_version(self, people_db):
        sql = "SELECT id FROM people WHERE community = 3"
        statement = people_db.parse_statement(sql)
        people_db.planner.plan(statement)
        people_db.execute(
            "INSERT INTO people (id, name, community, temperature, "
            "status) VALUES (99999, 'x', 3, 37.0, 'healthy')"
        )
        before = people_db.planner.access_paths_computed
        people_db.planner.plan(statement)
        assert people_db.planner.access_paths_computed > before

    def test_whatif_overlay_changes_the_key(self, people_db):
        """Masking/adding hypothetical indexes must not reuse plans
        cached for the real index set."""
        sql = "SELECT id FROM people WHERE community = 3"
        statement = people_db.parse_statement(sql)
        hypo = IndexDef(table="people", columns=("community",))
        baseline = people_db.planner.plan(statement).explain()
        people_db.catalog.set_whatif(hypothetical=[hypo])
        overlay = people_db.planner.plan(statement).explain()
        people_db.catalog.clear_whatif()
        again = people_db.planner.plan(statement).explain()
        assert "community" in overlay
        assert again == baseline
