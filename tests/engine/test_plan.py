"""Plan node utilities: explain rendering, traversal, index listing."""

import pytest

from repro.engine.index import IndexDef
from repro.engine.plan import (
    FilterPlan,
    HashJoinPlan,
    IndexScanPlan,
    LimitPlan,
    SeqScanPlan,
    SortPlan,
    indexes_used,
    walk_plan,
)
from repro.sql import ast


def index_scan(columns=("a",)):
    return IndexScanPlan(
        table="t",
        binding="t",
        index=IndexDef(table="t", columns=columns),
        eq_exprs=(ast.Literal(value=1),),
    )


class TestTraversal:
    def test_walk_preorder(self):
        scan = SeqScanPlan(table="t", binding="t")
        flt = FilterPlan(
            child=scan,
            predicate=ast.Comparison(
                op="=",
                left=ast.ColumnRef(column="a", table="t"),
                right=ast.Literal(value=1),
            ),
        )
        limit = LimitPlan(child=flt, limit=5)
        nodes = list(walk_plan(limit))
        assert nodes == [limit, flt, scan]

    def test_join_children(self):
        join = HashJoinPlan(
            left=SeqScanPlan(table="a", binding="a"),
            right=index_scan(),
            left_keys=(ast.ColumnRef(column="x", table="a"),),
            right_keys=(ast.ColumnRef(column="a", table="t"),),
        )
        kinds = [type(n).__name__ for n in walk_plan(join)]
        assert kinds == ["HashJoinPlan", "SeqScanPlan", "IndexScanPlan"]


class TestIndexesUsed:
    def test_collects_all_scans(self):
        join = HashJoinPlan(
            left=index_scan(("a",)),
            right=index_scan(("b", "c")),
            left_keys=(),
            right_keys=(),
        )
        used = indexes_used(join)
        assert {d.columns for d in used} == {("a",), ("b", "c")}

    def test_empty_for_seq_plans(self):
        assert indexes_used(SeqScanPlan(table="t", binding="t")) == []


class TestExplain:
    def test_describes_each_node_kind(self):
        scan = index_scan(("a", "b"))
        scan.range_column = "b"
        scan.range_low = ast.Literal(value=0)
        scan.range_high = ast.Literal(value=9)
        text = scan.explain()
        assert "IndexScan" in text
        assert "range" in text
        assert "rows=" in text and "cost=" in text

    def test_indentation_reflects_depth(self):
        scan = SeqScanPlan(table="t", binding="t")
        sort = SortPlan(child=scan, keys=())
        lines = sort.explain().splitlines()
        assert not lines[0].startswith(" ")
        assert lines[1].startswith("  ")

    def test_seq_scan_shows_filter(self):
        scan = SeqScanPlan(
            table="t",
            binding="t",
            predicate=ast.Comparison(
                op=">",
                left=ast.ColumnRef(column="a", table="t"),
                right=ast.Literal(value=3),
            ),
        )
        assert "filter=t.a > 3" in scan.describe()

    def test_index_only_marker(self):
        scan = index_scan()
        scan.index_only = True
        assert "index-only" in scan.describe()
