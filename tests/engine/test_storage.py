"""Heap storage tests."""

import pytest

from repro.engine.cost import PAGE_SIZE, CostTracker
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table
from repro.engine.storage import HeapFile


def heap():
    return HeapFile(
        table("t", [("a", T.INT), ("b", T.TEXT)], primary_key=["a"])
    )


class TestInsertFetch:
    def test_insert_returns_rid(self):
        h = heap()
        rid = h.insert((1, "x"))
        assert h.fetch(rid) == (1, "x")

    def test_row_count_tracks_live_rows(self):
        h = heap()
        rids = [h.insert((i, "v")) for i in range(10)]
        assert h.row_count == 10
        h.delete(rids[0])
        assert h.row_count == 9

    def test_wrong_width_rejected(self):
        h = heap()
        with pytest.raises(ValueError):
            h.insert((1, "x", "extra"))

    def test_pages_fill_to_capacity(self):
        h = heap()
        for i in range(h.rows_per_page):
            h.insert((i, "v"))
        assert h.page_count == 1
        h.insert((99, "v"))
        assert h.page_count == 2

    def test_byte_size(self):
        h = heap()
        h.insert((1, "x"))
        assert h.byte_size == PAGE_SIZE


class TestUpdateDelete:
    def test_update_in_place(self):
        h = heap()
        rid = h.insert((1, "x"))
        h.update(rid, (1, "y"))
        assert h.fetch(rid) == (1, "y")

    def test_delete_then_fetch_raises(self):
        h = heap()
        rid = h.insert((1, "x"))
        h.delete(rid)
        with pytest.raises(KeyError):
            h.fetch(rid)

    def test_delete_returns_row(self):
        h = heap()
        rid = h.insert((1, "x"))
        assert h.delete(rid) == (1, "x")

    def test_free_slot_reused(self):
        h = heap()
        rid = h.insert((1, "x"))
        h.delete(rid)
        new_rid = h.insert((2, "y"))
        assert new_rid == rid
        assert h.fetch(new_rid) == (2, "y")

    def test_invalid_rid_raises(self):
        h = heap()
        with pytest.raises(KeyError):
            h.fetch((99, 0))

    def test_page_count_stable_under_churn(self):
        h = heap()
        rids = [h.insert((i, "v")) for i in range(50)]
        pages = h.page_count
        for rid in rids[:25]:
            h.delete(rid)
        for i in range(25):
            h.insert((100 + i, "v"))
        assert h.page_count == pages


class TestScan:
    def test_scan_skips_deleted(self):
        h = heap()
        rids = [h.insert((i, "v")) for i in range(5)]
        h.delete(rids[2])
        values = [row[0] for _rid, row in h.scan()]
        assert values == [0, 1, 3, 4]

    def test_scan_yields_rids(self):
        h = heap()
        expected = [h.insert((i, "v")) for i in range(5)]
        assert [rid for rid, _row in h.scan()] == expected


class TestCostCharging:
    def test_scan_charges_pages_and_tuples(self):
        h = heap()
        for i in range(h.rows_per_page * 2):
            h.insert((i, "v"))
        tracker = CostTracker()
        list(h.scan(tracker))
        assert tracker.seq_pages == 2
        assert tracker.heap_tuples == h.rows_per_page * 2

    def test_fetch_charges_random_page(self):
        h = heap()
        rid = h.insert((1, "x"))
        tracker = CostTracker()
        h.fetch(rid, tracker)
        assert tracker.random_pages == 1

    def test_insert_charges(self):
        h = heap()
        tracker = CostTracker()
        h.insert((1, "x"), tracker)
        assert tracker.random_pages == 1
        assert tracker.heap_tuples == 1
