"""ANALYZE statistics and selectivity estimation tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.stats import (
    DEFAULT_RANGE_SELECTIVITY,
    ColumnStats,
    analyze_column,
    analyze_table,
)


class TestAnalyzeColumn:
    def test_empty(self):
        stats = analyze_column([])
        assert stats.n_distinct == 1
        assert stats.null_fraction == 0.0

    def test_all_null(self):
        stats = analyze_column([None, None])
        assert stats.null_fraction == 1.0
        assert stats.n_distinct == 0

    def test_null_fraction(self):
        stats = analyze_column([1, None, 2, None])
        assert stats.null_fraction == 0.5

    def test_distinct_count(self):
        stats = analyze_column([1, 1, 2, 3, 3, 3])
        assert stats.n_distinct == 3

    def test_min_max(self):
        stats = analyze_column([5, 1, 9, 3])
        assert stats.min_value == 1
        assert stats.max_value == 9

    def test_mcv_only_for_skew(self):
        uniform = analyze_column(list(range(100)) * 2)
        assert uniform.mcv == ()
        skewed = analyze_column([7] * 500 + list(range(100)))
        assert any(value == 7 for value, _ in skewed.mcv)

    def test_histogram_sorted(self):
        stats = analyze_column(random.Random(1).sample(range(10000), 500))
        assert list(stats.histogram) == sorted(stats.histogram)

    def test_text_column(self):
        stats = analyze_column(["b", "a", "c", "a"])
        assert stats.min_value == "a"
        assert stats.n_distinct == 3


class TestEqSelectivity:
    def test_uniform_eq(self):
        stats = analyze_column(list(range(100)))
        assert stats.eq_selectivity(50) == pytest.approx(0.01, rel=0.2)

    def test_mcv_eq_is_frequency(self):
        values = [7] * 500 + list(range(100))
        stats = analyze_column(values)
        assert stats.eq_selectivity(7) == pytest.approx(500 / 600, rel=0.05)

    def test_unknown_value_uses_distinct(self):
        stats = analyze_column(list(range(200)))
        assert stats.eq_selectivity(None) == pytest.approx(0.005, rel=0.2)

    def test_selectivities_sum_to_about_one(self):
        values = list(range(50)) * 4
        stats = analyze_column(values)
        total = sum(stats.eq_selectivity(v) for v in range(50))
        assert total == pytest.approx(1.0, rel=0.25)


class TestRangeSelectivity:
    def test_half_range(self):
        stats = analyze_column(list(range(1000)))
        sel = stats.range_selectivity(None, 500, high_inclusive=False)
        assert sel == pytest.approx(0.5, abs=0.08)

    def test_full_range(self):
        stats = analyze_column(list(range(1000)))
        sel = stats.range_selectivity(0, 999)
        assert sel > 0.9

    def test_narrow_range(self):
        stats = analyze_column(list(range(1000)))
        sel = stats.range_selectivity(100, 110)
        assert sel < 0.1

    def test_out_of_bounds_low(self):
        stats = analyze_column(list(range(1000)))
        assert stats.range_selectivity(None, -5) < 0.05

    def test_unknown_bounds_default(self):
        stats = analyze_column(list(range(1000)))
        assert stats.range_selectivity(None, None) == (
            DEFAULT_RANGE_SELECTIVITY
        )

    def test_no_histogram_default(self):
        assert ColumnStats().range_selectivity(1, 5) == (
            DEFAULT_RANGE_SELECTIVITY
        )


class TestOperatorDispatch:
    def setup_method(self):
        self.stats = analyze_column(list(range(1000)))

    def test_lt(self):
        assert self.stats.selectivity("<", (250,)) == pytest.approx(
            0.25, abs=0.08
        )

    def test_gt(self):
        assert self.stats.selectivity(">", (750,)) == pytest.approx(
            0.25, abs=0.08
        )

    def test_ge_includes_boundary(self):
        ge = self.stats.selectivity(">=", (750,))
        gt = self.stats.selectivity(">", (750,))
        assert ge >= gt

    def test_between(self):
        assert self.stats.selectivity(
            "between", (250, 750)
        ) == pytest.approx(0.5, abs=0.1)

    def test_ne(self):
        assert self.stats.selectivity("<>", (5,)) > 0.9

    def test_in(self):
        sel = self.stats.selectivity("in", (1, 2, 3))
        assert sel == pytest.approx(0.003, rel=0.5)

    def test_isnull(self):
        stats = analyze_column([1, None, None, 4])
        assert stats.selectivity("isnull", ()) == pytest.approx(0.5)

    def test_like_prefix(self):
        words = [f"{c}{i}" for c in "abcd" for i in range(100)]
        stats = analyze_column(words)
        sel = stats.selectivity("like", ("a%",))
        assert sel == pytest.approx(0.25, abs=0.1)

    def test_like_no_prefix_defaults(self):
        stats = analyze_column(["x", "y"])
        assert stats.selectivity("like", ("%z%",)) == (
            DEFAULT_RANGE_SELECTIVITY
        )


class TestAnalyzeTable:
    def test_row_count_and_columns(self):
        rows = [(i, f"n{i % 5}") for i in range(100)]
        stats = analyze_table(rows, ["id", "name"])
        assert stats.row_count == 100
        assert stats.column("id").n_distinct == 100
        assert stats.column("name").n_distinct == 5

    def test_missing_column_defaults(self):
        stats = analyze_table([], ["a"])
        assert stats.column("nope").n_distinct == 1


@given(
    st.lists(st.integers(0, 100), min_size=20, max_size=500),
    st.integers(0, 100),
    st.integers(0, 100),
)
@settings(max_examples=80, deadline=None)
def test_property_range_estimate_tracks_truth(values, a, b):
    """Histogram range estimates stay within a coarse error band."""
    lo, hi = min(a, b), max(a, b)
    stats = analyze_column(values)
    truth = sum(1 for v in values if lo <= v <= hi) / len(values)
    est = stats.range_selectivity(lo, hi)
    assert est == pytest.approx(truth, abs=0.35)


@given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
@settings(max_examples=80, deadline=None)
def test_property_selectivities_bounded(values):
    stats = analyze_column(values)
    for v in set(values):
        sel = stats.eq_selectivity(v)
        assert 0.0 < sel <= 1.0
