"""Cost model constants and Section V formula tests."""

import math

import pytest

from repro.engine.cost import (
    CostParams,
    CostTracker,
    index_cpu_cost,
    index_io_cost,
    index_running_cost,
    index_start_cost,
    pages_fetched,
)

PARAMS = CostParams()


class TestTracker:
    def test_starts_at_zero(self):
        assert CostTracker().total() == 0.0

    def test_weighted_total(self):
        tracker = CostTracker()
        tracker.charge_seq_pages(10)
        tracker.charge_random_pages(5)
        tracker.charge_heap_tuples(100)
        expected = (
            10 * PARAMS.seq_page_cost
            + 5 * PARAMS.random_page_cost
            + 100 * PARAMS.cpu_tuple_cost
        )
        assert tracker.total(PARAMS) == pytest.approx(expected)

    def test_add_accumulates(self):
        a, b = CostTracker(), CostTracker()
        a.charge_seq_pages(1)
        b.charge_seq_pages(2)
        a.add(b)
        assert a.seq_pages == 3

    def test_snapshot_is_independent(self):
        a = CostTracker()
        a.charge_operator_ops(1)
        snap = a.snapshot()
        a.charge_operator_ops(1)
        assert snap.operator_ops == 1
        assert a.operator_ops == 2


class TestSectionVFormulas:
    def test_io_cost(self):
        assert index_io_cost(10, PARAMS) == 10 * PARAMS.seq_page_cost

    def test_start_cost_formula(self):
        n, h = 10000, 3
        expected = (
            math.ceil(math.log(n)) + (h + 1) * 50
        ) * PARAMS.cpu_operator_cost
        assert index_start_cost(n, h, PARAMS) == pytest.approx(expected)

    def test_start_cost_small_tree(self):
        assert index_start_cost(1, 1, PARAMS) == pytest.approx(
            100 * PARAMS.cpu_operator_cost
        )

    def test_running_cost_linear(self):
        assert index_running_cost(10, PARAMS) == pytest.approx(
            10 * PARAMS.cpu_index_tuple_cost
        )

    def test_cpu_cost_is_sum(self):
        assert index_cpu_cost(1000, 2, 5, PARAMS) == pytest.approx(
            index_start_cost(1000, 2, PARAMS)
            + index_running_cost(5, PARAMS)
        )

    def test_cost_grows_with_height(self):
        assert index_cpu_cost(1000, 4, 1) > index_cpu_cost(1000, 2, 1)


class TestPagesFetched:
    def test_zero_rows(self):
        assert pages_fetched(0, 100) == 0.0

    def test_one_row_about_one_page(self):
        assert pages_fetched(1, 1000) == pytest.approx(1.0, rel=0.01)

    def test_capped_at_heap_pages(self):
        assert pages_fetched(10**9, 100) == 100

    def test_monotone_in_rows(self):
        small = pages_fetched(10, 100)
        large = pages_fetched(50, 100)
        assert large > small

    def test_never_exceeds_rows(self):
        assert pages_fetched(5, 10000) <= 5.0001
