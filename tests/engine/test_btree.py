"""B+Tree unit and property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.btree import (
    BTree,
    encode_bound,
    encode_key,
    estimate_btree_shape,
)


def make_tree(n, key_width=8, seed=3):
    tree = BTree(key_byte_width=key_width)
    rng = random.Random(seed)
    values = list(range(n))
    rng.shuffle(values)
    for v in values:
        tree.insert(encode_key((v,)), (v // 100, v % 100))
    return tree


class TestInsertAndSearch:
    def test_empty_tree(self):
        tree = BTree(key_byte_width=8)
        assert tree.entry_count == 0
        assert tree.height == 1
        assert tree.search_eq((5,), 1) == []

    def test_single_insert(self):
        tree = BTree(key_byte_width=8)
        tree.insert(encode_key((5,)), (0, 0))
        assert tree.search_eq((5,), 1) == [(0, 0)]

    def test_point_lookups_after_many_inserts(self):
        tree = make_tree(2000)
        for v in (0, 1, 999, 1998, 1999):
            assert tree.search_eq((v,), 1) == [(v // 100, v % 100)]

    def test_missing_key(self):
        tree = make_tree(100)
        assert tree.search_eq((12345,), 1) == []

    def test_duplicate_keys_all_returned(self):
        tree = BTree(key_byte_width=8)
        for slot in range(10):
            tree.insert(encode_key((7,)), (0, slot))
        assert sorted(tree.search_eq((7,), 1)) == [(0, s) for s in range(10)]

    def test_height_grows_with_size(self):
        small = make_tree(10)
        large = make_tree(20000)
        assert large.height > small.height

    def test_splits_counted(self):
        tree = make_tree(5000)
        assert tree.split_count > 0
        assert tree.page_count > 1

    def test_insert_returns_split_count(self):
        tree = BTree(key_byte_width=8)
        splits = sum(
            tree.insert(encode_key((i,)), (0, i)) for i in range(5000)
        )
        assert splits == tree.split_count


class TestDelete:
    def test_delete_existing(self):
        tree = make_tree(500)
        assert tree.delete(encode_key((42,)), (0, 42))
        assert tree.search_eq((42,), 1) == []
        assert tree.entry_count == 499

    def test_delete_missing_returns_false(self):
        tree = make_tree(100)
        assert not tree.delete(encode_key((42,)), (9, 9))

    def test_delete_specific_duplicate(self):
        tree = BTree(key_byte_width=8)
        tree.insert(encode_key((7,)), (0, 0))
        tree.insert(encode_key((7,)), (0, 1))
        assert tree.delete(encode_key((7,)), (0, 0))
        assert tree.search_eq((7,), 1) == [(0, 1)]

    def test_delete_then_reinsert(self):
        tree = make_tree(200)
        tree.delete(encode_key((5,)), (0, 5))
        tree.insert(encode_key((5,)), (3, 3))
        assert tree.search_eq((5,), 1) == [(3, 3)]


class TestRangeScan:
    def test_inclusive_range(self):
        tree = make_tree(1000)
        lo = encode_bound((100,), 1, low=True)
        hi = encode_bound((110,), 1, low=False)
        keys = [k[0][1] for k, _ in tree.scan_range(lo, hi)]
        assert keys == list(range(100, 111))

    def test_range_is_sorted(self):
        tree = make_tree(3000, seed=9)
        lo = encode_bound((0,), 1, low=True)
        hi = encode_bound((2999,), 1, low=False)
        keys = [k for k, _ in tree.scan_range(lo, hi)]
        assert keys == sorted(keys)

    def test_empty_range(self):
        tree = make_tree(100)
        lo = encode_bound((1000,), 1, low=True)
        hi = encode_bound((2000,), 1, low=False)
        assert list(tree.scan_range(lo, hi)) == []

    def test_scan_all_returns_everything(self):
        tree = make_tree(1234)
        assert len(list(tree.scan_all())) == 1234


class TestCompositeKeys:
    def test_prefix_search(self):
        tree = BTree(key_byte_width=16)
        for a in range(10):
            for b in range(10):
                tree.insert(encode_key((a, b)), (a, b))
        # All rows with first column == 3.
        assert len(tree.search_eq((3,), 2)) == 10
        # Exact two-column match.
        assert tree.search_eq((3, 7), 2) == [(3, 7)]

    def test_prefix_range_bounds(self):
        tree = BTree(key_byte_width=16)
        for a in range(5):
            for b in range(5):
                tree.insert(encode_key((a, b)), (a, b))
        lo = encode_bound((2, 1), 2, low=True)
        hi = encode_bound((2, 3), 2, low=False)
        rids = [rid for _k, rid in tree.scan_range(lo, hi)]
        assert rids == [(2, 1), (2, 2), (2, 3)]

    def test_null_sorts_first(self):
        tree = BTree(key_byte_width=8)
        tree.insert(encode_key((None,)), (0, 0))
        tree.insert(encode_key((1,)), (0, 1))
        keys = [k for k, _ in tree.scan_all()]
        assert keys[0] == encode_key((None,))

    def test_string_keys(self):
        tree = BTree(key_byte_width=24)
        for i, word in enumerate(["pear", "apple", "mango", "fig"]):
            tree.insert(encode_key((word,)), (0, i))
        keys = [k[0][1] for k, _ in tree.scan_all()]
        assert keys == sorted(keys)


class TestBulkLoad:
    def test_bulk_load_matches_incremental(self):
        entries = [
            (encode_key((v,)), (0, v)) for v in range(777)
        ]
        bulk = BTree(key_byte_width=8)
        bulk.bulk_load(list(entries))
        incremental = BTree(key_byte_width=8)
        for key, rid in entries:
            incremental.insert(key, rid)
        assert (
            [e for e in bulk.scan_all()]
            == [e for e in incremental.scan_all()]
        )

    def test_bulk_load_empty(self):
        tree = BTree(key_byte_width=8)
        tree.bulk_load([])
        assert tree.entry_count == 0
        assert list(tree.scan_all()) == []

    def test_bulk_load_resets_state(self):
        tree = make_tree(100)
        tree.bulk_load([(encode_key((1,)), (0, 0))])
        assert tree.entry_count == 1

    def test_bulk_load_invariants(self):
        tree = BTree(key_byte_width=8)
        tree.bulk_load([(encode_key((v,)), (0, v)) for v in range(5000)])
        tree.check_invariants()
        assert tree.height >= 2


class TestShapeEstimation:
    def test_estimate_close_to_actual(self):
        n, width = 20000, 16
        tree = BTree(key_byte_width=width)
        tree.bulk_load([(encode_key((v, v)), (0, v)) for v in range(n)])
        est_height, est_leaves, est_total = estimate_btree_shape(n, width)
        assert est_height == tree.height
        assert abs(est_leaves - tree.leaf_page_count) <= max(
            2, tree.leaf_page_count // 10
        )
        assert abs(est_total - tree.page_count) <= max(
            3, tree.page_count // 10
        )

    def test_estimate_empty(self):
        height, leaves, total = estimate_btree_shape(0, 8)
        assert (height, leaves, total) == (1, 1, 1)


@given(
    st.lists(
        st.tuples(st.integers(-50, 50), st.integers(0, 5)),
        min_size=0,
        max_size=300,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_tree_matches_sorted_reference(operations):
    """Random inserts (and deletes of seen entries) keep sorted order,
    the leaf chain, and the entry count consistent."""
    tree = BTree(key_byte_width=8)
    reference = []
    for i, (value, action) in enumerate(operations):
        if action == 0 and reference:
            key, rid = reference.pop(len(reference) // 2)
            assert tree.delete(key, rid)
        else:
            entry = (encode_key((value,)), (0, i))
            tree.insert(*entry)
            reference.append(entry)
    reference.sort()
    assert list(tree.scan_all()) == reference
    tree.check_invariants()


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=200), st.data())
@settings(max_examples=60, deadline=None)
def test_property_range_scan_equals_filter(values, data):
    tree = BTree(key_byte_width=8)
    for i, v in enumerate(values):
        tree.insert(encode_key((v,)), (0, i))
    lo_v = data.draw(st.integers(-10, 1010))
    hi_v = data.draw(st.integers(lo_v, 1010))
    lo = encode_bound((lo_v,), 1, low=True)
    hi = encode_bound((hi_v,), 1, low=False)
    got = sorted(rid for _k, rid in tree.scan_range(lo, hi))
    want = sorted((0, i) for i, v in enumerate(values) if lo_v <= v <= hi_v)
    assert got == want
