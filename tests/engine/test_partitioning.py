"""Global vs local index scope on partitioned tables (Section III)."""

import random

import pytest

from repro.ports.memory import MemoryBackend
from repro.engine.index import IndexDef, IndexScope, hypothetical_shape
from repro.engine.schema import ColumnType as T
from repro.engine.schema import TableSchema, table
from repro.engine.stats import TableStats


def partitioned_db(rows=6000, partitions=8):
    db = MemoryBackend()
    db.create_table(
        table(
            "events",
            [
                ("event_id", T.INT),
                ("tenant_id", T.INT),
                ("kind", T.INT),
                ("value", T.FLOAT),
            ],
            primary_key=["event_id"],
            partition_count=partitions,
            partition_key="tenant_id",
        )
    )
    rng = random.Random(3)
    db.load_rows(
        "events",
        [
            (i, rng.randrange(40), rng.randrange(200),
             round(rng.random() * 100, 2))
            for i in range(rows)
        ],
    )
    db.analyze()
    return db


class TestSchemaValidation:
    def test_partitioned_table_needs_key(self):
        with pytest.raises(ValueError):
            TableSchema(
                name="t",
                columns=(),
                partition_count=4,
            )

    def test_partition_key_must_exist(self):
        with pytest.raises(ValueError):
            table(
                "t", [("a", T.INT)], partition_count=2,
                partition_key="nope",
            )

    def test_partition_of_is_stable(self):
        schema = table(
            "t", [("a", T.INT)], partition_count=4, partition_key="a"
        )
        assert schema.partition_of(17) == schema.partition_of(17)
        assert 0 <= schema.partition_of(17) < 4

    def test_unpartitioned_always_partition_zero(self):
        schema = table("t", [("a", T.INT)])
        assert schema.partition_of(99) == 0
        assert not schema.is_partitioned


class TestLocalIndexStructure:
    def test_local_index_builds_per_partition_trees(self):
        db = partitioned_db()
        local = IndexDef(
            table="events", columns=("kind",), scope=IndexScope.LOCAL
        )
        index = db.create_index(local)
        assert index.partition_count == 8
        assert len(index.trees) == 8
        assert index.entry_count == 6000

    def test_global_index_is_single_tree(self):
        db = partitioned_db()
        index = db.create_index(
            IndexDef(table="events", columns=("kind",))
        )
        assert index.partition_count == 1
        assert index.tree.entry_count == 6000

    def test_single_tree_accessor_guarded_for_local(self):
        db = partitioned_db()
        index = db.create_index(
            IndexDef(table="events", columns=("kind",),
                     scope=IndexScope.LOCAL)
        )
        with pytest.raises(AttributeError):
            _ = index.tree

    def test_global_takes_more_space_than_local(self):
        """The scope trade-off: global = wider entries, more pages."""
        db = partitioned_db(rows=20000)
        local = db.create_index(
            IndexDef(table="events", columns=("kind",),
                     scope=IndexScope.LOCAL)
        )
        global_ = db.create_index(
            IndexDef(table="events", columns=("kind",))
        )
        assert global_.byte_size > local.byte_size

    def test_scope_distinguishes_identity(self):
        local = IndexDef(
            table="t", columns=("a",), scope=IndexScope.LOCAL
        )
        global_ = IndexDef(table="t", columns=("a",))
        assert local.key != global_.key
        assert not local.is_prefix_of(global_)


class TestCorrectness:
    @pytest.mark.parametrize("scope", [IndexScope.GLOBAL, IndexScope.LOCAL])
    def test_results_match_seq_scan(self, scope):
        db = partitioned_db()
        sql = "SELECT event_id FROM events WHERE kind = 7"
        want = sorted(db.execute(sql).rows)
        db.create_index(
            IndexDef(table="events", columns=("kind",), scope=scope)
        )
        db.analyze()
        assert sorted(db.execute(sql).rows) == want

    def test_local_index_with_partition_key_prune(self):
        db = partitioned_db()
        db.create_index(
            IndexDef(
                table="events", columns=("tenant_id", "kind"),
                scope=IndexScope.LOCAL,
            )
        )
        db.analyze()
        got = db.execute(
            "SELECT event_id FROM events WHERE tenant_id = 5 AND kind = 3"
        ).rows
        db.drop_index(
            IndexDef(
                table="events", columns=("tenant_id", "kind"),
                scope=IndexScope.LOCAL,
            )
        )
        want = db.execute(
            "SELECT event_id FROM events WHERE tenant_id = 5 AND kind = 3"
        ).rows
        assert sorted(got) == sorted(want)

    def test_writes_maintain_local_index(self):
        db = partitioned_db()
        db.create_index(
            IndexDef(table="events", columns=("kind",),
                     scope=IndexScope.LOCAL)
        )
        db.execute(
            "INSERT INTO events (event_id, tenant_id, kind, value) "
            "VALUES (999999, 3, 12345, 1.0)"
        )
        assert db.execute(
            "SELECT event_id FROM events WHERE kind = 12345"
        ).rows == [(999999,)]
        db.execute("DELETE FROM events WHERE event_id = 999999")
        assert db.execute(
            "SELECT count(*) FROM events WHERE kind = 12345"
        ).scalar == 0


class TestCosting:
    def test_pruned_lookup_cheaper_than_unpruned(self):
        db = partitioned_db(rows=20000)
        db.create_index(
            IndexDef(
                table="events", columns=("tenant_id", "kind"),
                scope=IndexScope.LOCAL,
            )
        )
        db.analyze()
        pruned = db.execute(
            "SELECT count(*) FROM events WHERE tenant_id = 5 AND kind = 3"
        ).cost
        db.create_index(
            IndexDef(table="events", columns=("kind",),
                     scope=IndexScope.LOCAL)
        )
        db.analyze()
        unpruned = db.execute(
            "SELECT count(*) FROM events WHERE kind = 3"
        ).cost
        # The unpruned lookup pays one descent per partition.
        assert unpruned > pruned

    def test_hypothetical_shapes_reflect_scope(self):
        schema = table(
            "t",
            [("a", T.INT), ("b", T.INT)],
            partition_count=8,
            partition_key="a",
        )
        stats = TableStats(row_count=50000)
        local = hypothetical_shape(
            IndexDef(table="t", columns=("b",), scope=IndexScope.LOCAL),
            schema,
            stats,
        )
        global_ = hypothetical_shape(
            IndexDef(table="t", columns=("b",)), schema, stats
        )
        assert local.partitions == 8
        assert global_.partitions == 1
        assert global_.byte_size > local.byte_size
        assert local.height <= global_.height

    def test_candidates_offer_both_scopes(self):
        from repro.core.candidates import CandidateGenerator
        from repro.sql import parse

        db = partitioned_db()
        generator = CandidateGenerator(db)
        defs = generator.for_statement(
            parse("SELECT event_id FROM events WHERE kind = 3")
        )
        scopes = {d.scope for d in defs if d.columns == ("kind",)}
        assert scopes == {IndexScope.GLOBAL, IndexScope.LOCAL}

    def test_advisor_picks_some_scope_under_budget(self):
        from repro.core.advisor import AutoIndexAdvisor

        db = partitioned_db(rows=20000)
        advisor = AutoIndexAdvisor(db, mcts_iterations=50)
        rng = random.Random(9)
        for _ in range(60):
            kind = rng.randrange(200)
            tenant = rng.randrange(40)
            sql = (
                "SELECT count(*) FROM events "
                f"WHERE tenant_id = {tenant} AND kind = {kind}"
            )
            db.execute(sql)
            advisor.observe(sql)
        report = advisor.tune()
        assert report.created, "an index on (tenant, kind) should win"


class TestPartitionKeyUpdates:
    """Updating a row's partition key must re-route LOCAL index entries."""

    def test_local_index_follows_partition_move(self):
        db = partitioned_db(rows=2000)
        db.create_index(
            IndexDef(table="events", columns=("kind",),
                     scope=IndexScope.LOCAL)
        )
        db.analyze()
        # Move event 5 to a different tenant (its hash partition moves).
        old_tenant = db.execute(
            "SELECT tenant_id FROM events WHERE event_id = 5"
        ).scalar
        new_tenant = (old_tenant + 17) % 40
        db.execute(
            f"UPDATE events SET tenant_id = {new_tenant} "
            "WHERE event_id = 5"
        )
        kind = db.execute(
            "SELECT kind FROM events WHERE event_id = 5"
        ).scalar
        # A kind lookup (served by the LOCAL index) must still find it.
        got = db.execute(
            f"SELECT event_id FROM events WHERE kind = {kind}"
        ).rows
        assert (5,) in got
        index = db.catalog.get_index(
            IndexDef(table="events", columns=("kind",),
                     scope=IndexScope.LOCAL)
        )
        assert index.entry_count == 2000  # no duplicate/lost entries

    def test_update_maintenance_cost_counts_partition_move(self):
        db = partitioned_db(rows=2000)
        db.create_index(
            IndexDef(table="events", columns=("kind",),
                     scope=IndexScope.LOCAL)
        )
        db.analyze()
        io, cpu = db.planner.maintenance_components_per_row(
            "events", {"tenant_id"}
        )
        # The LOCAL (kind,) index is rerouted even though tenant_id is
        # not an indexed column (pk is GLOBAL and unaffected).
        assert cpu > 0

    def test_global_index_unaffected_by_partition_move(self):
        db = partitioned_db(rows=2000)
        db.create_index(IndexDef(table="events", columns=("kind",)))
        db.analyze()
        io, cpu = db.planner.maintenance_components_per_row(
            "events", {"tenant_id"}
        )
        assert cpu == 0.0 and io == 0.0
