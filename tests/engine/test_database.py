"""Database facade tests: DDL, loading, metrics, monitoring."""

import pytest

from repro.ports.memory import MemoryBackend
from repro.engine.index import IndexDef
from repro.engine.metrics import QueryRecord
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table


class TestDdl:
    def test_create_table_adds_pk_index(self, empty_db):
        empty_db.create_table(
            table("t", [("a", T.INT), ("b", T.INT)], primary_key=["a"])
        )
        defs = empty_db.index_defs()
        assert len(defs) == 1
        assert defs[0].columns == ("a",)
        assert defs[0].unique

    def test_create_table_without_pk(self, empty_db):
        empty_db.create_table(table("t", [("a", T.INT)]))
        assert empty_db.index_defs() == []

    def test_create_index_backfills(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("community",))
        )
        index = people_db.catalog.get_index(
            IndexDef(table="people", columns=("community",))
        )
        assert index.entry_count == people_db.table_row_count("people")

    def test_drop_index(self, people_db):
        definition = IndexDef(table="people", columns=("community",))
        people_db.create_index(definition)
        people_db.drop_index(definition)
        assert not people_db.has_index(definition)

    def test_drop_table(self, people_db):
        people_db.drop_table("people")
        assert not people_db.catalog.has_table("people")


class TestLoading:
    def test_load_rows_counts(self, empty_db):
        empty_db.create_table(table("t", [("a", T.INT)]))
        assert empty_db.load_rows("t", [(i,) for i in range(10)]) == 10
        assert empty_db.table_row_count("t") == 10

    def test_load_rebuilds_existing_indexes(self, empty_db):
        empty_db.create_table(
            table("t", [("a", T.INT), ("b", T.INT)], primary_key=["a"])
        )
        empty_db.load_rows("t", [(i, i % 3) for i in range(50)])
        empty_db.analyze()
        assert empty_db.execute("SELECT b FROM t WHERE a = 7").scalar == 1

    def test_analyze_populates_stats(self, empty_db):
        empty_db.create_table(table("t", [("a", T.INT)]))
        empty_db.load_rows("t", [(i % 5,) for i in range(100)])
        empty_db.analyze()
        stats = empty_db.catalog.stats("t")
        assert stats.row_count == 100
        assert stats.column("a").n_distinct == 5


class TestExecution:
    def test_execution_result_fields(self, people_db):
        result = people_db.execute("SELECT id FROM people WHERE id < 5")
        assert result.rowcount == 5
        assert result.cost > 0
        assert result.plan is not None

    def test_scalar_none_for_empty(self, people_db):
        assert people_db.execute(
            "SELECT id FROM people WHERE id = -1"
        ).scalar is None

    def test_statement_cache_reuses_ast(self, people_db):
        sql = "SELECT id FROM people WHERE id = 1"
        first = people_db.parse_statement(sql)
        second = people_db.parse_statement(sql)
        assert first is second

    def test_explain_renders_tree(self, people_db):
        text = people_db.explain("SELECT id FROM people WHERE id = 1")
        assert "IndexScan" in text or "SeqScan" in text
        assert "cost=" in text

    def test_write_cost_grows_with_indexes(self, people_db):
        sql = (
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES ({pid}, 'x', 1, 37.0, 'y')"
        )
        bare = people_db.execute(sql.format(pid=90001)).cost
        people_db.create_index(IndexDef(table="people", columns=("community",)))
        people_db.create_index(IndexDef(table="people", columns=("temperature",)))
        loaded = people_db.execute(sql.format(pid=90002)).cost
        assert loaded > bare


class TestMetrics:
    def test_index_usage_counts_lookups(self, people_db):
        people_db.execute("SELECT name FROM people WHERE id = 1")
        usage = {
            u.definition.columns: u for u in people_db.index_usage()
        }
        assert usage[("id",)].lookups >= 1

    def test_index_usage_counts_maintenance(self, people_db):
        people_db.create_index(IndexDef(table="people", columns=("community",)))
        people_db.execute(
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (91000, 'x', 1, 37.0, 'y')"
        )
        usage = {
            u.definition.columns: u for u in people_db.index_usage()
        }
        assert usage[("community",)].maintenance_ops >= 1

    def test_reset_index_usage(self, people_db):
        people_db.execute("SELECT name FROM people WHERE id = 1")
        people_db.reset_index_usage()
        assert all(u.lookups == 0 for u in people_db.index_usage())

    def test_monitor_records_queries(self, people_db):
        before = people_db.monitor.total_queries
        people_db.execute("SELECT id FROM people WHERE id = 1")
        assert people_db.monitor.total_queries == before + 1

    def test_monitor_regression_detection(self):
        from repro.engine.metrics import WorkloadMonitor

        monitor = WorkloadMonitor(window=10, regression_factor=1.2)
        for _ in range(10):
            monitor.record(QueryRecord("q", cost=1.0, is_write=False))
        for _ in range(10):
            monitor.record(QueryRecord("q", cost=5.0, is_write=False))
        assert monitor.regression_detected()

    def test_monitor_stable_workload_no_regression(self):
        from repro.engine.metrics import WorkloadMonitor

        monitor = WorkloadMonitor(window=10)
        for _ in range(30):
            monitor.record(QueryRecord("q", cost=1.0, is_write=False))
        assert not monitor.regression_detected()


class TestSizes:
    def test_index_size_real_vs_hypothetical(self, people_db):
        definition = IndexDef(table="people", columns=("community",))
        hypo_size = people_db.index_size_bytes(definition)
        people_db.create_index(definition)
        real_size = people_db.index_size_bytes(definition)
        assert hypo_size == pytest.approx(real_size, rel=0.3)

    def test_total_index_bytes_sums(self, people_db):
        base = people_db.total_index_bytes()
        people_db.create_index(IndexDef(table="people", columns=("community",)))
        assert people_db.total_index_bytes() > base


class TestDeterminism:
    def test_same_query_same_cost(self, people_db):
        sql = "SELECT id FROM people WHERE community = 3"
        first = people_db.execute(sql).cost
        second = people_db.execute(sql).cost
        assert first == second

    def test_fresh_databases_identical(self):
        def build():
            db = MemoryBackend()
            db.create_table(
                table("t", [("a", T.INT), ("b", T.INT)], primary_key=["a"])
            )
            db.load_rows("t", [(i, i * 7 % 13) for i in range(500)])
            db.analyze()
            return db.execute("SELECT count(*) FROM t WHERE b < 5")

        first, second = build(), build()
        assert first.rows == second.rows
        assert first.cost == second.cost
