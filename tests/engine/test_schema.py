"""Schema definition tests."""

import pytest

from repro.engine.schema import Column, ColumnType, TableSchema, table


class TestTableSchema:
    def test_shorthand_constructor(self):
        t = table(
            "t", [("a", ColumnType.INT), ("b", ColumnType.TEXT)],
            primary_key=["a"],
        )
        assert t.column_names == ("a", "b")
        assert t.primary_key == ("a",)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            table("t", [("a", ColumnType.INT), ("a", ColumnType.INT)])

    def test_bad_primary_key_rejected(self):
        with pytest.raises(ValueError):
            table("t", [("a", ColumnType.INT)], primary_key=["nope"])

    def test_column_lookup(self):
        t = table("t", [("a", ColumnType.INT)])
        assert t.column("a").type is ColumnType.INT
        with pytest.raises(KeyError):
            t.column("b")

    def test_column_index(self):
        t = table("t", [("a", ColumnType.INT), ("b", ColumnType.BOOL)])
        assert t.column_index("b") == 1

    def test_has_column(self):
        t = table("t", [("a", ColumnType.INT)])
        assert t.has_column("a")
        assert not t.has_column("z")


class TestWidths:
    def test_default_widths(self):
        assert Column("a", ColumnType.INT).byte_width == 8
        assert Column("a", ColumnType.BOOL).byte_width == 1
        assert Column("a", ColumnType.TEXT).byte_width == 24

    def test_width_override(self):
        assert Column("a", ColumnType.TEXT, width=100).byte_width == 100

    def test_row_width_includes_header(self):
        t = table("t", [("a", ColumnType.INT)])
        assert t.row_byte_width == 24 + 8

    def test_widths_kwarg(self):
        t = table(
            "t", [("a", ColumnType.TEXT)], widths={"a": 64}
        )
        assert t.column("a").byte_width == 64
