"""Planner tests: access-path choice, join strategy, cost estimates."""

import pytest

from repro.engine.index import IndexDef
from repro.engine.plan import (
    HashJoinPlan,
    IndexScanPlan,
    LimitPlan,
    NestedLoopPlan,
    SeqScanPlan,
    SortPlan,
    indexes_used,
    walk_plan,
)
from repro.engine.planner import PlanningError


def plan_of(db, sql):
    statement = db.parse_statement(sql)
    return db.planner.plan(statement)


def scan_nodes(plan, kind):
    return [n for n in walk_plan(plan) if isinstance(n, kind)]


class TestAccessPaths:
    def test_no_index_means_seq_scan(self, people_db):
        plan = plan_of(people_db, "SELECT id FROM people WHERE community = 1")
        assert scan_nodes(plan, SeqScanPlan)

    def test_pk_point_lookup_uses_index(self, people_db):
        plan = plan_of(people_db, "SELECT name FROM people WHERE id = 7")
        nodes = scan_nodes(plan, IndexScanPlan)
        assert nodes and nodes[0].index.columns == ("id",)

    def test_selective_secondary_index_wins(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("community", "status"))
        )
        people_db.analyze()
        plan = plan_of(
            people_db,
            "SELECT id FROM people WHERE community = 1 AND status = 'suspect'",
        )
        nodes = scan_nodes(plan, IndexScanPlan)
        assert nodes and nodes[0].index.columns == ("community", "status")

    def test_unselective_predicate_prefers_seq(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("temperature",))
        )
        people_db.analyze()
        plan = plan_of(
            people_db, "SELECT name FROM people WHERE temperature > 36.0"
        )
        assert scan_nodes(plan, SeqScanPlan)

    def test_index_only_scan_for_covered_count(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("temperature",))
        )
        people_db.analyze()
        plan = plan_of(
            people_db,
            "SELECT count(*) FROM people WHERE temperature >= 39.0",
        )
        nodes = scan_nodes(plan, IndexScanPlan)
        assert nodes and nodes[0].index_only

    def test_fetching_other_columns_disables_index_only(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("temperature",))
        )
        people_db.analyze()
        plan = plan_of(
            people_db,
            "SELECT name FROM people WHERE temperature >= 40.9",
        )
        nodes = scan_nodes(plan, IndexScanPlan)
        if nodes:  # selective enough to use the index
            assert not nodes[0].index_only

    def test_leftmost_prefix_match(self, people_db):
        people_db.create_index(
            IndexDef(
                table="people", columns=("community", "status", "temperature")
            )
        )
        people_db.analyze()
        plan = plan_of(
            people_db,
            "SELECT id FROM people WHERE community = 2 AND status = 'healthy'",
        )
        nodes = scan_nodes(plan, IndexScanPlan)
        assert nodes and len(nodes[0].eq_exprs) == 2

    def test_range_after_eq_prefix(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("community", "temperature"))
        )
        people_db.analyze()
        plan = plan_of(
            people_db,
            "SELECT id FROM people "
            "WHERE community = 2 AND temperature > 40.5",
        )
        nodes = scan_nodes(plan, IndexScanPlan)
        assert nodes
        assert nodes[0].range_column == "temperature"

    def test_non_prefix_column_cannot_use_index(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("community", "temperature"))
        )
        people_db.analyze()
        # temperature alone cannot use a (community, temperature) index.
        plan = plan_of(
            people_db, "SELECT id FROM people WHERE temperature > 40.9"
        )
        assert scan_nodes(plan, SeqScanPlan)


class TestJoinPlanning:
    def test_hash_join_for_unindexed_fk(self, join_db):
        plan = plan_of(
            join_db,
            "SELECT c.name FROM customers c "
            "JOIN orders o ON c.cid = o.cid WHERE o.amount > 990",
        )
        assert scan_nodes(plan, HashJoinPlan)

    def test_index_nl_when_outer_tiny(self, indexed_join_db):
        plan = plan_of(
            indexed_join_db,
            "SELECT o.amount FROM customers c "
            "JOIN orders o ON c.cid = o.cid WHERE c.cid = 5",
        )
        nl = scan_nodes(plan, NestedLoopPlan)
        assert nl
        assert isinstance(nl[0].inner, IndexScanPlan)

    def test_estimates_populated(self, join_db):
        plan = plan_of(
            join_db,
            "SELECT c.name FROM customers c JOIN orders o ON c.cid = o.cid",
        )
        for node in walk_plan(plan):
            assert node.est_cost >= 0

    def test_cartesian_product_allowed(self, join_db):
        plan = plan_of(
            join_db,
            "SELECT c.name FROM customers c, orders o "
            "WHERE c.region = 1 AND o.amount > 999",
        )
        assert scan_nodes(plan, NestedLoopPlan)


class TestSortAvoidance:
    def test_sort_present_without_index(self, people_db):
        plan = plan_of(
            people_db, "SELECT id FROM people WHERE community = 1 ORDER BY temperature"
        )
        assert scan_nodes(plan, SortPlan)

    def test_index_order_skips_sort(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("community", "temperature"))
        )
        people_db.analyze()
        plan = plan_of(
            people_db,
            "SELECT temperature FROM people WHERE community = 1 "
            "ORDER BY temperature",
        )
        if scan_nodes(plan, IndexScanPlan):
            assert not scan_nodes(plan, SortPlan)

    def test_desc_order_still_sorts(self, people_db):
        people_db.create_index(
            IndexDef(table="people", columns=("community", "temperature"))
        )
        people_db.analyze()
        plan = plan_of(
            people_db,
            "SELECT temperature FROM people WHERE community = 1 "
            "ORDER BY temperature DESC",
        )
        assert scan_nodes(plan, SortPlan)


class TestWhatIfCosting:
    def test_hypothetical_index_lowers_estimate(self, people_db):
        sql = (
            "SELECT id FROM people WHERE community = 1 "
            "AND status = 'confirmed'"
        )
        without, _ = people_db.estimate_cost(sql, [])
        hypo = IndexDef(table="people", columns=("community", "status"))
        with_index, plan = people_db.estimate_cost(sql, [hypo])
        assert with_index < without
        assert hypo in indexes_used(plan)

    def test_estimate_on_template_with_placeholders(self, people_db):
        from repro.sql import parse

        stmt = parse("SELECT id FROM people WHERE community = $1")
        cost, _plan = people_db.estimate_cost(stmt, [])
        assert cost > 0

    def test_write_estimate_counts_hypothetical_maintenance(self, people_db):
        sql = (
            "INSERT INTO people (id, name, community, temperature, status) "
            "VALUES (70000, 'x', 1, 37.0, 'y')"
        )
        bare, _ = people_db.estimate_cost(sql, [])
        config = [
            IndexDef(table="people", columns=("community",)),
            IndexDef(table="people", columns=("temperature", "status")),
        ]
        loaded, _ = people_db.estimate_cost(sql, config)
        assert loaded > bare

    def test_update_maintenance_only_for_touched_columns(self, people_db):
        config = [IndexDef(table="people", columns=("community",))]
        unrelated, _ = people_db.estimate_cost(
            "UPDATE people SET temperature = 40.0 WHERE id = 1", config
        )
        related, _ = people_db.estimate_cost(
            "UPDATE people SET community = 9 WHERE id = 1", config
        )
        assert related > unrelated

    def test_delete_charges_no_index_maintenance(self, people_db):
        config = [IndexDef(table="people", columns=("community",))]
        with_cfg, _ = people_db.estimate_cost(
            "DELETE FROM people WHERE id = 1", config
        )
        without, _ = people_db.estimate_cost(
            "DELETE FROM people WHERE id = 1", []
        )
        assert with_cfg == pytest.approx(without)

    def test_whatif_overlay_cleared_after_estimate(self, people_db):
        hypo = IndexDef(table="people", columns=("community",))
        people_db.estimate_cost("SELECT id FROM people WHERE id = 1", [hypo])
        assert not people_db.catalog.whatif_active


class TestLimits:
    def test_limit_caps_estimate(self, people_db):
        plan = plan_of(people_db, "SELECT id FROM people LIMIT 3")
        limit = scan_nodes(plan, LimitPlan)[0]
        assert limit.est_rows <= 3


class TestErrors:
    def test_unknown_binding(self, people_db):
        with pytest.raises(PlanningError):
            plan_of(people_db, "SELECT zzz.id FROM people")

    def test_update_unknown_column(self, people_db):
        with pytest.raises(PlanningError):
            plan_of(people_db, "UPDATE people SET nope = 1")

    def test_insert_unknown_column(self, people_db):
        with pytest.raises(PlanningError):
            plan_of(people_db, "INSERT INTO people (nope) VALUES (1)")
