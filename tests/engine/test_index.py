"""IndexDef / Index / hypothetical shape tests."""

import pytest

from repro.engine.index import (
    Index,
    IndexDef,
    IndexScope,
    hypothetical_shape,
    shape_of_index,
)
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table
from repro.engine.stats import TableStats
from repro.engine.storage import HeapFile


SCHEMA = table(
    "t", [("a", T.INT), ("b", T.INT), ("c", T.TEXT)], primary_key=["a"]
)


class TestIndexDef:
    def test_key_identity(self):
        a = IndexDef(table="t", columns=("a", "b"), name="x")
        b = IndexDef(table="t", columns=("a", "b"), name="y")
        assert a.key == b.key

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            IndexDef(table="t", columns=())

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            IndexDef(table="t", columns=("a", "a"))

    def test_display_name_generated(self):
        d = IndexDef(table="t", columns=("a", "b"))
        assert d.display_name == "idx_t_a_b"

    def test_display_name_explicit(self):
        d = IndexDef(table="t", columns=("a",), name="my_idx")
        assert d.display_name == "my_idx"

    def test_prefix_relation(self):
        narrow = IndexDef(table="t", columns=("a",))
        wide = IndexDef(table="t", columns=("a", "b"))
        assert narrow.is_prefix_of(wide)
        assert not wide.is_prefix_of(narrow)
        assert narrow.is_prefix_of(narrow)

    def test_prefix_requires_same_table(self):
        a = IndexDef(table="t", columns=("a",))
        b = IndexDef(table="u", columns=("a", "b"))
        assert not a.is_prefix_of(b)

    def test_prefix_respects_order(self):
        ab = IndexDef(table="t", columns=("a", "b"))
        ba = IndexDef(table="t", columns=("b", "a"))
        assert not ab.is_prefix_of(ba)

    def test_default_scope_global(self):
        assert IndexDef(table="t", columns=("a",)).scope is IndexScope.GLOBAL


def build_index(rows, columns=("b",)):
    heap = HeapFile(SCHEMA)
    for row in rows:
        heap.insert(row)
    index = Index(IndexDef(table="t", columns=columns), SCHEMA)
    index.build(list(heap.scan()))
    return index


class TestMaterializedIndex:
    def test_build_and_count(self):
        index = build_index([(i, i % 4, "x") for i in range(100)])
        assert index.entry_count == 100

    def test_key_for_row_orders_columns(self):
        index = build_index([], columns=("c", "a"))
        assert index.key_for_row((1, 2, "z")) == ("z", 1)

    def test_insert_delete_row(self):
        index = build_index([(i, i, "x") for i in range(10)])
        index.insert_row((0, 99), (99, 99, "x"))
        assert index.entry_count == 11
        assert index.delete_row((0, 99), (99, 99, "x"))
        assert index.entry_count == 10

    def test_covers_columns(self):
        index = build_index([], columns=("a", "b"))
        assert index.covers_columns(["a"])
        assert index.covers_columns(["b", "a"])
        assert not index.covers_columns(["c"])

    def test_usage_counters(self):
        index = build_index([(1, 1, "x")])
        assert index.maintenance_count == 0
        index.insert_row((0, 1), (2, 2, "x"))
        assert index.maintenance_count == 1


class TestShapes:
    def test_real_shape_matches_tree(self):
        index = build_index([(i, i, "x") for i in range(5000)])
        shape = shape_of_index(index)
        assert shape.height == index.tree.height
        assert shape.entry_count == 5000
        assert shape.byte_size == index.byte_size

    def test_hypothetical_tracks_row_count(self):
        small = hypothetical_shape(
            IndexDef(table="t", columns=("b",)), SCHEMA,
            TableStats(row_count=100),
        )
        large = hypothetical_shape(
            IndexDef(table="t", columns=("b",)), SCHEMA,
            TableStats(row_count=100000),
        )
        assert large.total_pages > small.total_pages
        assert large.height >= small.height

    def test_wider_keys_cost_more_pages(self):
        stats = TableStats(row_count=50000)
        narrow = hypothetical_shape(
            IndexDef(table="t", columns=("a",)), SCHEMA, stats
        )
        wide = hypothetical_shape(
            IndexDef(table="t", columns=("a", "b", "c")), SCHEMA, stats
        )
        assert wide.total_pages > narrow.total_pages
