"""Executor edge cases: empty inputs, NULL join keys, degenerate plans."""

import pytest

from repro.ports.memory import MemoryBackend
from repro.engine.index import IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table


@pytest.fixture
def edge_db():
    db = MemoryBackend()
    db.create_table(
        table(
            "left_t",
            [("id", T.INT), ("k", T.INT), ("name", T.TEXT)],
            primary_key=["id"],
        )
    )
    db.create_table(
        table(
            "right_t",
            [("id", T.INT), ("k", T.INT), ("v", T.FLOAT)],
            primary_key=["id"],
        )
    )
    db.create_table(table("empty_t", [("a", T.INT)], primary_key=["a"]))
    db.load_rows(
        "left_t",
        [(1, 10, "a"), (2, 20, "b"), (3, None, "c"), (4, 40, "d")],
    )
    db.load_rows(
        "right_t",
        [(1, 10, 1.0), (2, 10, 2.0), (3, None, 3.0), (4, 99, 4.0)],
    )
    db.analyze()
    return db


class TestEmptyInputs:
    def test_scan_empty_table(self, edge_db):
        assert edge_db.execute("SELECT a FROM empty_t").rows == []

    def test_aggregate_over_empty_table(self, edge_db):
        row = edge_db.execute(
            "SELECT count(*), sum(a), min(a) FROM empty_t"
        ).rows[0]
        assert row == (0, None, None)

    def test_group_by_over_empty_table(self, edge_db):
        assert edge_db.execute(
            "SELECT a, count(*) FROM empty_t GROUP BY a"
        ).rows == []

    def test_join_with_empty_side(self, edge_db):
        assert edge_db.execute(
            "SELECT l.name FROM left_t l JOIN empty_t e ON l.id = e.a"
        ).rows == []

    def test_order_limit_on_empty(self, edge_db):
        assert edge_db.execute(
            "SELECT a FROM empty_t ORDER BY a LIMIT 5"
        ).rows == []

    def test_update_delete_on_empty(self, edge_db):
        assert edge_db.execute("UPDATE empty_t SET a = 1").rowcount == 0
        assert edge_db.execute("DELETE FROM empty_t").rowcount == 0


class TestNullJoinKeys:
    def test_null_keys_never_match(self, edge_db):
        rows = edge_db.execute(
            "SELECT l.id, r.id FROM left_t l, right_t r WHERE l.k = r.k"
        ).rows
        # Only k=10 matches (left row 1 with right rows 1 and 2);
        # NULL = NULL must not join.
        assert sorted(rows) == [(1, 1), (1, 2)]

    def test_null_keys_with_index_nl(self, edge_db):
        edge_db.create_index(IndexDef(table="right_t", columns=("k",)))
        edge_db.analyze()
        rows = edge_db.execute(
            "SELECT l.id, r.id FROM left_t l, right_t r WHERE l.k = r.k"
        ).rows
        assert sorted(rows) == [(1, 1), (1, 2)]


class TestDegenerateStatements:
    def test_where_always_false(self, edge_db):
        assert edge_db.execute(
            "SELECT id FROM left_t WHERE 1 = 2"
        ).rows == []

    def test_where_always_true(self, edge_db):
        assert edge_db.execute(
            "SELECT count(*) FROM left_t WHERE 1 = 1"
        ).scalar == 4

    def test_division_by_zero_is_null(self, edge_db):
        result = edge_db.execute(
            "SELECT count(*) FROM left_t WHERE k / 0 > 1"
        )
        assert result.scalar == 0  # NULL comparison filters out

    def test_self_join(self, edge_db):
        rows = edge_db.execute(
            "SELECT a.id, b.id FROM left_t a, left_t b "
            "WHERE a.k = b.k AND a.id < b.id"
        ).rows
        assert rows == []  # k values are unique among non-nulls

    def test_in_list_with_null_member(self, edge_db):
        got = edge_db.execute(
            "SELECT id FROM left_t WHERE k IN (10, NULL)"
        ).rows
        assert got == [(1,)]

    def test_duplicate_column_projection(self, edge_db):
        row = edge_db.execute(
            "SELECT id, id, k FROM left_t WHERE id = 1"
        ).rows[0]
        assert row == (1, 1, 10)

    def test_limit_larger_than_result(self, edge_db):
        rows = edge_db.execute("SELECT id FROM left_t LIMIT 100").rows
        assert len(rows) == 4


class TestStringEdges:
    def test_quote_escaping_round_trip(self, edge_db):
        edge_db.execute(
            "INSERT INTO left_t (id, k, name) VALUES (50, 1, 'it''s')"
        )
        assert edge_db.execute(
            "SELECT name FROM left_t WHERE id = 50"
        ).scalar == "it's"

    def test_empty_string_value(self, edge_db):
        edge_db.execute(
            "INSERT INTO left_t (id, k, name) VALUES (51, 1, '')"
        )
        assert edge_db.execute(
            "SELECT count(*) FROM left_t WHERE name = ''"
        ).scalar == 1

    def test_like_on_percent_in_data(self, edge_db):
        edge_db.execute(
            "INSERT INTO left_t (id, k, name) VALUES (52, 1, 'x%y')"
        )
        got = edge_db.execute(
            "SELECT id FROM left_t WHERE name LIKE 'x%'"
        ).rows
        assert (52,) in got


class TestReportRendering:
    def test_render_skipped(self):
        from repro.core.advisor import TuningReport

        assert "skipped" in TuningReport(skipped=True).render()

    def test_render_changes(self):
        from repro.core.advisor import TuningReport

        report = TuningReport(
            created=[IndexDef(table="t", columns=("a",))],
            dropped=[IndexDef(table="t", columns=("b",))],
            estimated_benefit=50.0,
            baseline_cost=100.0,
            templates_used=3,
            candidates_considered=2,
            estimator_calls=9,
            elapsed_seconds=0.5,
        )
        text = report.render()
        assert "created: t(a)" in text
        assert "dropped: t(b)" in text
        assert "50.0%" in text
        assert "3 templates" in text

    def test_render_no_changes(self):
        from repro.core.advisor import TuningReport

        assert "no index changes" in TuningReport().render()
