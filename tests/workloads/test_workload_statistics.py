"""Statistical sanity checks on the workload generators.

The evaluation's validity depends on the generators producing the
distributions the paper's scenarios assume (transaction mixes, skew,
service splits); these tests pin those properties down.
"""

import random
from collections import Counter

import pytest

from repro.workloads import (
    BankingWorkload,
    EpidemicWorkload,
    TpccWorkload,
    TpcdsWorkload,
)
from repro.workloads.base import weighted_choice


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(1)
        counts = Counter(
            weighted_choice(rng, [8.0, 1.0, 1.0]) for _ in range(5000)
        )
        assert counts[0] > counts[1] * 4
        assert counts[0] > counts[2] * 4

    def test_single_weight(self):
        rng = random.Random(1)
        assert weighted_choice(rng, [5.0]) == 0

    def test_zero_tail_never_picked(self):
        rng = random.Random(1)
        picks = {weighted_choice(rng, [1.0, 0.0]) for _ in range(200)}
        assert picks == {0}


class TestTpccMix:
    def test_transaction_mix_tracks_spec_weights(self):
        generator = TpccWorkload(scale=1, seed=11)
        tags = Counter(q.tag for q in generator.queries(4000, seed=1))
        total = sum(tags.values())
        # new_order + payment dominate (the spec puts them at 88%).
        assert (tags["new_order"] + tags["payment"]) / total > 0.7
        # The three read-mostly transactions exist but are rare.
        for tag in ("order_status", "delivery", "stock_level"):
            assert 0 < tags[tag] / total < 0.2

    def test_insert_ids_do_not_collide_with_loaded_data(self):
        generator = TpccWorkload(scale=1, seed=11)
        queries = generator.queries(1000, seed=0)
        inserted_order_ids = [
            int(q.sql.split("VALUES (1, ")[1].split(",")[1])
            for q in queries
            if q.sql.startswith("INSERT INTO orders")
        ]
        assert all(
            oid > generator.orders_per_district
            for oid in inserted_order_ids
        )

    def test_different_seeds_differ(self):
        generator = TpccWorkload(scale=1, seed=11)
        a = [q.sql for q in generator.queries(100, seed=1)]
        b = [q.sql for q in generator.queries(100, seed=2)]
        assert a != b


class TestBankingSplit:
    def test_hybrid_mix_is_mostly_withdrawal(self):
        generator = BankingWorkload(
            accounts=400, txn_rows=800, product_rows=10
        )
        tags = Counter(
            q.tag for q in generator.queries(2000, seed=1)
        )
        assert tags["withdraw"] > tags["summarize"]
        assert tags["summarize"] > 0

    def test_withdrawals_are_write_heavy(self):
        generator = BankingWorkload(
            accounts=400, txn_rows=800, product_rows=10
        )
        queries = generator.withdrawal_queries(500, seed=1)
        write_share = sum(q.is_write for q in queries) / len(queries)
        assert 0.3 < write_share < 0.7

    def test_txn_ids_monotonic(self):
        generator = BankingWorkload(
            accounts=400, txn_rows=800, product_rows=10
        )
        inserts = [
            q.sql
            for q in generator.withdrawal_queries(300, seed=1)
            if q.sql.startswith("INSERT INTO txn_log")
        ]
        ids = [int(sql.split("VALUES (")[1].split(",")[0]) for sql in inserts]
        assert ids == sorted(ids)
        assert ids[0] > 800  # beyond the loaded rows


class TestTpcdsProperties:
    def test_three_channels_covered(self):
        queries = TpcdsWorkload().queries()
        text = " ".join(q.sql for q in queries)
        assert "store_sales" in text
        assert "catalog_sales" in text
        assert "web_sales" in text

    def test_count_cap(self):
        generator = TpcdsWorkload()
        assert len(generator.queries(count=10)) == 10

    def test_deterministic_given_seed(self):
        a = [q.sql for q in TpcdsWorkload(seed=5).queries()]
        b = [q.sql for q in TpcdsWorkload(seed=5).queries()]
        assert a == b


class TestEpidemicShape:
    def test_w1_has_count_and_point_queries(self):
        generator = EpidemicWorkload(people=500)
        sqls = [q.sql for q in generator.phase_w1(200, seed=1)]
        assert any("count(*)" in s for s in sqls)
        assert any("community =" in s for s in sqls)

    def test_w3_touches_name_community(self):
        generator = EpidemicWorkload(people=500)
        sqls = [q.sql for q in generator.phase_w3(200, seed=1)]
        assert any("name = " in s and "community = " in s for s in sqls)
