"""Workload generator tests: schema integrity, determinism, executability."""

import pytest

from repro.ports.memory import MemoryBackend
from repro.workloads import (
    BankingWorkload,
    DynamicWorkload,
    EpidemicWorkload,
    TpccWorkload,
    TpcdsWorkload,
)
from repro.workloads.banking import NUM_PRODUCT_TABLES, NUM_SUMMARY_TABLES
from repro.workloads.dynamic import epidemic_phases, tpcc_rounds


@pytest.fixture(scope="module")
def tpcc_db():
    generator = TpccWorkload(scale=1)
    db = MemoryBackend()
    generator.build(db)
    return generator, db


@pytest.fixture(scope="module")
def tpcds_db():
    generator = TpcdsWorkload()
    db = MemoryBackend()
    generator.build(db)
    return generator, db


class TestTpcc:
    def test_nine_tables(self, tpcc_db):
        generator, db = tpcc_db
        assert len(generator.schemas()) == 9
        assert set(db.catalog.table_names()) == {
            "warehouse", "district", "customer", "history", "orders",
            "new_order", "order_line", "item", "stock",
        }

    def test_row_counts_scale(self):
        small = TpccWorkload(scale=1)
        large = TpccWorkload(scale=3)
        assert large.customers_per_district == 3 * small.customers_per_district
        assert large.items == 3 * small.items

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            TpccWorkload(scale=0)

    def test_queries_deterministic(self, tpcc_db):
        generator, _db = tpcc_db
        a = [q.sql for q in TpccWorkload(scale=1).queries(50, seed=5)]
        b = [q.sql for q in TpccWorkload(scale=1).queries(50, seed=5)]
        assert a == b

    def test_mix_contains_all_transactions(self, tpcc_db):
        generator, _db = tpcc_db
        tags = {q.tag for q in generator.queries(800, seed=1)}
        assert tags == {
            "new_order", "payment", "order_status", "delivery",
            "stock_level",
        }

    def test_all_queries_execute(self, tpcc_db):
        generator, db = tpcc_db
        for query in generator.queries(150, seed=2):
            result = db.execute(query.sql)
            assert result.cost > 0

    def test_write_ratio_substantial(self, tpcc_db):
        generator, _db = tpcc_db
        queries = generator.queries(500, seed=3)
        writes = sum(1 for q in queries if q.is_write)
        assert 0.25 < writes / len(queries) < 0.75


class TestTpcds:
    def test_star_schema_present(self, tpcds_db):
        _generator, db = tpcds_db
        assert db.catalog.has_table("store_sales")
        assert db.catalog.has_table("date_dim")
        assert db.catalog.has_table("item")

    def test_queries_are_tagged_and_read_only(self, tpcds_db):
        generator, _db = tpcds_db
        queries = generator.queries()
        assert len(queries) >= 50
        assert all(q.tag and q.tag.startswith("q") for q in queries)
        assert all(not q.is_write for q in queries)

    def test_tags_unique(self, tpcds_db):
        generator, _db = tpcds_db
        tags = [q.tag for q in generator.queries()]
        assert len(tags) == len(set(tags))

    def test_sample_queries_execute(self, tpcds_db):
        generator, db = tpcds_db
        for query in generator.queries()[:10]:
            db.execute(query.sql)

    def test_q32_style_query_present(self, tpcds_db):
        generator, _db = tpcds_db
        assert any(
            "i_manufact_id" in q.sql and "cs_item_sk" in q.sql
            for q in generator.queries()
        )


class TestBanking:
    def test_144_tables(self):
        generator = BankingWorkload()
        assert len(generator.schemas()) == 144
        assert NUM_PRODUCT_TABLES + NUM_SUMMARY_TABLES + 5 == 144

    def test_exactly_263_manual_indexes(self):
        generator = BankingWorkload()
        assert len(generator.manual_withdraw_indexes()) == 263

    def test_manual_indexes_reference_real_columns(self):
        generator = BankingWorkload()
        schemas = {s.name: s for s in generator.schemas()}
        for definition in generator.manual_withdraw_indexes():
            schema = schemas[definition.table]
            for column in definition.columns:
                assert schema.has_column(column)

    def test_withdrawal_and_summary_streams(self):
        generator = BankingWorkload(accounts=500, txn_rows=1000,
                                    product_rows=20)
        wd = generator.withdrawal_queries(50, seed=1)
        sm = generator.summarization_queries(20, seed=1)
        assert all(q.tag == "withdraw" for q in wd)
        assert all(q.tag == "summarize" for q in sm)
        assert any(q.is_write for q in wd)
        assert all(not q.is_write for q in sm)

    def test_small_banking_executes(self):
        generator = BankingWorkload(
            accounts=300, txn_rows=600, product_rows=10
        )
        db = MemoryBackend()
        generator.build(db, with_defaults=False)
        for query in generator.queries(40, seed=2):
            db.execute(query.sql)


class TestEpidemic:
    def test_phases_have_expected_mix(self):
        generator = EpidemicWorkload(people=500)
        w1 = generator.phase_w1(100, seed=1)
        w2 = generator.phase_w2(100, seed=2)
        w3 = generator.phase_w3(100, seed=3)
        assert all(not q.is_write for q in w1)
        assert sum(q.is_write for q in w2) > 80
        writes_w3 = sum(q.is_write for q in w3)
        assert 30 < writes_w3 < 90

    def test_insert_ids_monotonic(self):
        generator = EpidemicWorkload(people=100)
        inserts = [
            q.sql for q in generator.phase_w2(50, seed=1) if q.is_write
        ]
        ids = [int(sql.split("VALUES (")[1].split(",")[0]) for sql in inserts]
        assert ids == sorted(ids)
        assert ids[0] >= 100

    def test_full_pipeline_executes(self):
        generator = EpidemicWorkload(people=400)
        db = MemoryBackend()
        generator.build(db)
        for query in generator.queries(60, seed=1):
            db.execute(query.sql)


class TestDynamic:
    def test_epidemic_phases_wrapper(self):
        generator = EpidemicWorkload(people=200)
        dynamic = epidemic_phases(generator, queries_per_phase=10)
        assert len(dynamic) == 3
        names = [phase.name for phase in dynamic]
        assert names == ["W1-reads", "W2-inserts", "W3-updates"]
        for phase in dynamic:
            assert len(phase.queries(seed=1)) == 10

    def test_tpcc_rounds_distinct_parameters(self):
        generator = TpccWorkload(scale=1)
        dynamic = tpcc_rounds(generator, rounds=3, queries_per_round=30)
        assert len(dynamic) == 3
        first = [q.sql for q in dynamic.phases[0].queries(seed=0)]
        second = [q.sql for q in dynamic.phases[1].queries(seed=0)]
        assert first != second
