"""Shared fixtures: small, deterministic databases for fast tests."""

from __future__ import annotations

import random

import pytest

from repro.ports.memory import MemoryBackend
from repro.engine.index import IndexDef
from repro.engine.schema import ColumnType as T
from repro.engine.schema import table


@pytest.fixture
def empty_db() -> MemoryBackend:
    return MemoryBackend()


def _make_people_db() -> MemoryBackend:
    db = MemoryBackend()
    db.create_table(
        table(
            "people",
            [
                ("id", T.INT),
                ("name", T.TEXT),
                ("community", T.INT),
                ("temperature", T.FLOAT),
                ("status", T.TEXT),
            ],
            primary_key=["id"],
        )
    )
    rng = random.Random(7)
    rows = [
        (
            i,
            f"person_{i}",
            rng.randrange(20),
            round(36.0 + rng.random() * 5.0, 1),
            rng.choice(("healthy", "suspect", "confirmed")),
        )
        for i in range(2000)
    ]
    db.load_rows("people", rows)
    db.analyze()
    return db


@pytest.fixture
def people_db() -> MemoryBackend:
    """A 2000-row single-table database with mixed column types."""
    return _make_people_db()


@pytest.fixture
def people_db2() -> MemoryBackend:
    """An identical twin of :func:`people_db` (deterministic seed),
    for tests that compare two pipelines over equal databases."""
    return _make_people_db()


@pytest.fixture
def join_db() -> MemoryBackend:
    """Two joined tables (customers / orders) with an fk relationship."""
    db = MemoryBackend()
    db.create_table(
        table(
            "customers",
            [("cid", T.INT), ("name", T.TEXT), ("region", T.INT)],
            primary_key=["cid"],
        )
    )
    db.create_table(
        table(
            "orders",
            [
                ("oid", T.INT),
                ("cid", T.INT),
                ("amount", T.FLOAT),
                ("status", T.TEXT),
            ],
            primary_key=["oid"],
        )
    )
    rng = random.Random(13)
    db.load_rows(
        "customers",
        [(i, f"cust_{i}", rng.randrange(8)) for i in range(500)],
    )
    db.load_rows(
        "orders",
        [
            (
                i,
                rng.randrange(500),
                round(rng.random() * 1000, 2),
                rng.choice(("open", "paid", "void")),
            )
            for i in range(4000)
        ],
    )
    db.analyze()
    return db


@pytest.fixture
def indexed_join_db(join_db: MemoryBackend) -> MemoryBackend:
    """join_db plus secondary indexes on the fk and filter columns."""
    join_db.create_index(IndexDef(table="orders", columns=("cid",)))
    join_db.create_index(
        IndexDef(table="orders", columns=("status", "amount"))
    )
    join_db.analyze()
    return join_db
